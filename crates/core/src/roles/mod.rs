//! Per-role protocol engines.
//!
//! The paper's roles are *functions within a router* (§2.1): a
//! data-plane router is a client for every AP; any router may
//! additionally be an ARR for some APs or a TRR for some clusters. This
//! module gives each function its own engine behind the shared [`Role`]
//! trait; [`crate::node::BgpNode`] is the thin shell that owns the
//! [`crate::spec::NetworkSpec`], classifies inputs by plane + peer
//! group, and routes them to its role set.
//!
//! Plane → role dispatch (see `BgpNode::classify`):
//!
//! | plane  | sender                      | receiving role |
//! |--------|-----------------------------|----------------|
//! | Mesh   | any (full-mesh mode)        | [`ClientRole`] |
//! | Abrr   | an ARR of a covering AP     | [`ClientRole`] |
//! | Abrr   | a client of an AP we serve  | [`ArrRole`]    |
//! | Tbrr   | anyone, when we reflect     | [`TrrRole`]    |
//! | Tbrr   | one of our TRRs             | [`ClientRole`] |
//!
//! [`BorderRole`] has no iBGP plane: it ingests eBGP/operator events
//! and contributes the exit candidates every other role's decisions
//! start from.
//!
//! Cross-role interaction is explicit: a role never touches a sibling's
//! state directly. The one internal hand-off the paper calls out — a
//! router's client function passing its best route to its *own* ARR
//! function without an iBGP message ("a logical pass", §2.1) — travels
//! through `AdvertiseEnv::arr`.

mod arr;
mod border;
mod client;
mod trr;

pub use arr::ArrRole;
pub use border::BorderRole;
pub use client::ClientRole;
pub use trr::TrrRole;

use crate::counters::UpdateCounters;
use crate::msg::{BgpMsg, Plane};
use crate::node::Selected;
use crate::spec::{Mode, NetworkSpec};
use bgp_rib::{best_path, AdjRibOut, Candidate, PathSet, PrefixSlab};
use bgp_types::{ApId, Ipv4Prefix, NextHop, PathAttributes, RouterId};
use netsim::{Ctx, Mrai, MraiVerdict};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Cached obs registry handles for one router, created lazily the
/// first time metrics are enabled so the hot paths never pay a
/// registry lock — only one relaxed enabled-load plus an atomic add.
///
/// The counter mirrors shadow [`UpdateCounters`] fields (which stay
/// the always-on source of truth for results); the histograms are new
/// per-node series the plain counters cannot express. All ops are
/// commutative atomic adds, so sequential and parallel engine runs
/// produce identical snapshots.
pub(crate) struct ObsHandles {
    pub(crate) received: obs::Counter,
    pub(crate) generated: obs::Counter,
    pub(crate) transmitted: obs::Counter,
    pub(crate) bytes_transmitted: obs::Counter,
    pub(crate) loop_prevented: obs::Counter,
    pub(crate) ebgp_events: obs::Counter,
    pub(crate) ebgp_exported: obs::Counter,
    /// Updates flushed together by one MRAI timer expiry (§4.2 update
    /// batching — the mechanism behind "one combined outbound update").
    pub(crate) mrai_batch: obs::Histogram,
    /// How long MRAI pacing deferred an update, in sim microseconds.
    pub(crate) mrai_defer_us: obs::Histogram,
    /// Candidate-set size entering the decision process.
    pub(crate) decision_candidates: obs::Histogram,
}

impl ObsHandles {
    fn new(id: RouterId) -> ObsHandles {
        let n = Some(id.0);
        ObsHandles {
            received: obs::metrics::counter("core.updates.received", n),
            generated: obs::metrics::counter("core.updates.generated", n),
            transmitted: obs::metrics::counter("core.updates.transmitted", n),
            bytes_transmitted: obs::metrics::counter("core.updates.bytes_transmitted", n),
            loop_prevented: obs::metrics::counter("core.updates.loop_prevented", n),
            ebgp_events: obs::metrics::counter("core.ebgp.events", n),
            ebgp_exported: obs::metrics::counter("core.ebgp.exported", n),
            mrai_batch: obs::metrics::histogram("core.mrai.batch", n, obs::metrics::COUNT_BOUNDS),
            mrai_defer_us: obs::metrics::histogram(
                "core.mrai.defer_us",
                n,
                obs::metrics::LATENCY_BOUNDS_US,
            ),
            decision_candidates: obs::metrics::histogram(
                "core.decision.candidates",
                n,
                obs::metrics::COUNT_BOUNDS,
            ),
        }
    }
}

/// The infrastructure shared by every role of one router: identity and
/// spec, the per-peer-group Adj-RIB-Out, the Loc-RIB, update
/// accounting, MRAI pacing, and the configuration that survives a
/// crash-restart (transition accept-set, runtime AP reassignments).
///
/// Roles receive `&mut Chassis` in every trait call; it is the only
/// mutable state they share.
pub struct Chassis {
    pub(crate) id: RouterId,
    pub(crate) spec: Arc<NetworkSpec>,
    /// Adj-RIB-Out, one copy per peer group (paper Appendix A
    /// accounting). Shared: each role writes its own group ids.
    pub(crate) out: AdjRibOut,
    /// Selected routes.
    pub(crate) loc_rib: bgp_rib::LocRib<Selected>,
    /// Per-prefix best-route change counts (oscillation diagnostics).
    /// Slab-backed so diagnostics iterate in prefix order without a
    /// snapshot sort.
    pub(crate) selection_changes: PrefixSlab<u64>,
    /// Update accounting.
    pub(crate) counters: UpdateCounters,
    /// Per-peer MRAI pacing, keyed by (plane, prefix).
    pub(crate) mrai: BTreeMap<RouterId, Mrai<(Plane, Ipv4Prefix), BgpMsg>>,
    /// Transition (§2.4): APs for which ABRR routes are accepted.
    pub(crate) accept_abrr: BTreeSet<ApId>,
    /// Runtime AP→ARR reassignments (paper §2.2). Overrides the spec's
    /// static assignment; treated as configuration, so it survives a
    /// crash-restart.
    pub(crate) arr_override: BTreeMap<ApId, Vec<RouterId>>,
    /// Lazily-built obs registry handles (see [`ObsHandles`]).
    obs: Option<ObsHandles>,
}

impl Chassis {
    pub(crate) fn new(id: RouterId, spec: Arc<NetworkSpec>) -> Chassis {
        let accept_abrr = match spec.mode {
            Mode::Abrr => spec
                .ap_map
                .as_ref()
                .map(|m| m.partitions().iter().map(|p| p.id).collect())
                .unwrap_or_default(),
            _ => BTreeSet::new(),
        };
        Chassis {
            id,
            spec,
            out: AdjRibOut::new(),
            loc_rib: bgp_rib::LocRib::new(),
            selection_changes: PrefixSlab::new(),
            counters: UpdateCounters::default(),
            mrai: BTreeMap::new(),
            accept_abrr,
            arr_override: BTreeMap::new(),
            obs: None,
        }
    }

    /// The obs handles when metrics are enabled (built on first use).
    #[inline]
    pub(crate) fn obs(&mut self) -> Option<&ObsHandles> {
        if !obs::metrics::enabled() {
            return None;
        }
        if self.obs.is_none() {
            self.obs = Some(ObsHandles::new(self.id));
        }
        self.obs.as_ref()
    }

    /// The ARRs currently responsible for `ap`: a runtime reassignment
    /// overrides the spec's static assignment.
    pub(crate) fn arrs_of(&self, ap: ApId) -> &[RouterId] {
        self.arr_override
            .get(&ap)
            .map(|v| v.as_slice())
            .unwrap_or_else(|| self.spec.arrs_of(ap))
    }

    /// Whether `r` is (currently) an ARR for an AP covering `prefix`.
    pub(crate) fn is_arr_for_prefix(&self, r: RouterId, prefix: &Ipv4Prefix) -> bool {
        if self.arr_override.is_empty() {
            return self.spec.is_arr_for_prefix(r, prefix);
        }
        self.aps_for_prefix(prefix)
            .iter()
            .any(|ap| self.arrs_of(*ap).contains(&r))
    }

    pub(crate) fn ap_covers(&self, ap: ApId, prefix: &Ipv4Prefix) -> bool {
        self.spec
            .ap_map
            .as_ref()
            .and_then(|m| m.partition(ap))
            .map(|p| p.covers(prefix))
            .unwrap_or(false)
    }

    /// The address ranges of partition `ap` (empty when no AP map or
    /// unknown id) — the keys for pruned trie-range RIB queries.
    pub(crate) fn ap_ranges(&self, ap: ApId) -> Vec<bgp_types::AddressRange> {
        self.spec
            .ap_map
            .as_ref()
            .and_then(|m| m.partition(ap))
            .map(|p| p.ranges.clone())
            .unwrap_or_default()
    }

    pub(crate) fn aps_for_prefix(&self, prefix: &Ipv4Prefix) -> Vec<ApId> {
        self.spec
            .ap_map
            .as_ref()
            .map(|m| m.aps_for_prefix(prefix))
            .unwrap_or_default()
    }

    /// Transition rule (§2.4): ABRR routes for `prefix` are accepted
    /// when every AP covering it has been cut over (a spanning prefix
    /// flips only when all its APs have).
    pub(crate) fn use_abrr_for(&self, prefix: &Ipv4Prefix) -> bool {
        match self.spec.mode {
            Mode::Abrr => true,
            Mode::Transition => {
                let aps = self.aps_for_prefix(prefix);
                !aps.is_empty() && aps.iter().all(|ap| self.accept_abrr.contains(ap))
            }
            _ => false,
        }
    }

    pub(crate) fn igp_metric_fn(&self) -> impl Fn(NextHop) -> Option<u32> + '_ {
        let me = self.id;
        let oracle = &self.spec.oracle;
        move |nh: NextHop| oracle.distance(me, RouterId(nh.0))
    }

    /// Picks the best candidate and updates the Loc-RIB. Returns the
    /// winner (cloned) if any.
    pub(crate) fn select(&mut self, prefix: Ipv4Prefix, cands: &[Candidate]) -> Option<Selected> {
        let igp = self.igp_metric_fn();
        let best = best_path(cands, &self.spec.decision, &igp);
        drop(igp);
        let selected = best.map(|i| Selected {
            attrs: cands[i].attrs.clone(),
            source: cands[i].source,
            neighbor_id: cands[i].neighbor_id,
        });
        if self.loc_rib.set(prefix, selected.clone()) {
            *self.selection_changes.get_or_insert_with(prefix, || 0) += 1;
            obs::event!(Core, Debug, "core.select", node = self.id.0,
                "prefix" => format!("{prefix:?}"),
                "cands" => cands.len(),
                "some" => selected.is_some());
        }
        selected
    }

    // ------------------------------------------------------------------
    // Transmission with MRAI
    // ------------------------------------------------------------------

    pub(crate) fn transmit(&mut self, ctx: &mut Ctx<BgpMsg>, peer: RouterId, msg: BgpMsg) {
        if peer == self.id {
            return;
        }
        let interval = self.spec.mrai_us;
        let mrai = self.mrai.entry(peer).or_insert_with(|| Mrai::new(interval));
        let now = ctx.now();
        match mrai.offer(now, (msg.plane, msg.prefix), msg) {
            MraiVerdict::SendNow(msg) => self.do_send(ctx, peer, msg),
            MraiVerdict::Deferred {
                flush_at,
                need_timer,
            } => {
                if let Some(h) = self.obs() {
                    h.mrai_defer_us.record(flush_at.saturating_sub(now));
                }
                if need_timer {
                    ctx.set_timer(flush_at, peer.0 as u64);
                }
            }
        }
    }

    pub(crate) fn do_send(&mut self, ctx: &mut Ctx<BgpMsg>, peer: RouterId, msg: BgpMsg) {
        self.counters.transmitted += 1;
        let bytes = if self.spec.account_bytes {
            let b = msg.wire_bytes(true) as u64;
            self.counters.bytes_transmitted += b;
            b
        } else {
            0
        };
        if let Some(h) = self.obs() {
            h.transmitted.inc();
            h.bytes_transmitted.add(bytes);
        }
        obs::event!(Core, Trace, "core.send", node = self.id.0,
            "peer" => peer.0, "prefix" => format!("{:?}", msg.prefix));
        ctx.send(peer, msg);
    }

    /// Writes `paths` into RIB-Out `g` for `prefix`; on change, counts a
    /// generation and transmits each member its *effective* set: the
    /// group set minus routes that originated at the member, and empty
    /// for a member matched by `suppress` (the Table 1 "not returned to
    /// sender" exception). A member whose effective set is empty still
    /// receives the (possibly redundant) withdrawal — it may hold a
    /// previously advertised route that this change retracts; receivers
    /// deduplicate via replace-set change detection.
    pub(crate) fn advertise_group(
        &mut self,
        ctx: &mut Ctx<BgpMsg>,
        g: u32,
        prefix: Ipv4Prefix,
        plane: Plane,
        paths: PathSet,
        suppress: impl Fn(RouterId) -> bool,
    ) {
        if !self.out.set_paths(g, prefix, paths.clone()) {
            return;
        }
        self.counters.generated += 1;
        if let Some(h) = self.obs() {
            h.generated.inc();
        }
        let full: Arc<PathSet> = Arc::new(paths);
        let empty: Arc<PathSet> = Arc::new(Vec::new());
        // Only members that originated one of the paths need a filtered
        // copy; everyone else shares the one full set.
        let originators: Vec<u32> = full
            .iter()
            .filter_map(|(_, a)| a.originator_id.map(|o| o.0))
            .collect();
        let members = self.out.members(g).to_vec();
        for m in members {
            if m == self.id {
                // Internal logical pass: the ARR function of this very
                // router (only arises for client→own-ARR advertisement,
                // handled by the caller).
                continue;
            }
            let effective: Arc<PathSet> = if suppress(m) {
                empty.clone()
            } else if originators.contains(&m.0) {
                Arc::new(
                    full.iter()
                        .filter(|(_, a)| a.originator_id.map(|o| o.0) != Some(m.0))
                        .cloned()
                        .collect(),
                )
            } else {
                full.clone()
            };
            self.transmit(
                ctx,
                m,
                BgpMsg {
                    prefix,
                    paths: effective,
                    plane,
                },
            );
        }
    }

    /// Re-sends our current Adj-RIB-Out toward a peer whose session
    /// just re-established (BGP full-table re-advertisement). Walks the
    /// peer-group-deduplicated export state through a per-session
    /// cursor ([`AdjRibOut::export_walk`]): nothing is copied per
    /// session, and the (group id, prefix) walk order is the
    /// deterministic on-the-wire order.
    pub(crate) fn resync_peer(&mut self, ctx: &mut Ctx<BgpMsg>, peer: RouterId) {
        let plane_of_group = |g: u32| -> Plane {
            if g == crate::node::group::MESH {
                Plane::Mesh
            } else if (crate::node::group::CLIENT_TO_ARRS
                ..crate::node::group::ARR_TO_CLIENTS + 1000)
                .contains(&g)
            {
                Plane::Abrr
            } else {
                Plane::Tbrr
            }
        };
        let mut to_send: Vec<BgpMsg> = Vec::new();
        for (g, prefix, set) in self.out.export_walk(peer) {
            let effective: PathSet = set
                .iter()
                .filter(|(_, a)| a.originator_id.map(|o| o.0) != Some(peer.0))
                .cloned()
                .collect();
            if !effective.is_empty() {
                to_send.push(BgpMsg {
                    prefix: *prefix,
                    paths: Arc::new(effective),
                    plane: plane_of_group(g),
                });
            }
        }
        for msg in to_send {
            self.transmit(ctx, peer, msg);
        }
    }

    /// Crash-restart: runtime protocol state is lost; configuration
    /// (roles, peer groups, reassignments) and cumulative device
    /// counters survive.
    pub(crate) fn on_restart(&mut self) {
        self.out.clear_routes();
        self.loc_rib = bgp_rib::LocRib::new();
        self.mrai.clear();
        self.selection_changes.clear();
    }
}

/// An incoming iBGP replace-set, pre-classified by the shell, plus the
/// cross-role facts the receiving role's storage policy needs.
pub struct Rx {
    /// The advertising peer.
    pub(crate) from: RouterId,
    /// The session plane the update arrived on.
    pub(crate) plane: Plane,
    /// Destination prefix.
    pub(crate) prefix: Ipv4Prefix,
    /// The complete new path set (empty = withdraw).
    pub(crate) paths: PathSet,
    /// Whether this router has *ever* originated `prefix` or learned it
    /// over eBGP (border-role stickiness). The client role stores the
    /// full received set for such prefixes instead of its reduced best
    /// — a reduced set could drop exactly the route that MED-eliminates
    /// one of our own routes (see [`ClientRole`]).
    pub(crate) own_ever: bool,
}

/// The per-recompute context a role advertises from. Built once by the
/// shell after the decision, then handed to each advertising role.
pub struct AdvertiseEnv<'a> {
    /// The shell's new selection for the prefix (post-decision).
    pub(crate) sel: Option<&'a Selected>,
    /// Whether the selection changed in this recompute.
    pub(crate) sel_changed: bool,
    /// Border-role exit candidates (local + eBGP, decision order) — the
    /// seed of every role's plane view; lets the TRR rebuild its
    /// TBRR-plane candidate set without touching border state.
    pub(crate) exit_cands: &'a [Candidate],
    /// The router's own ARR function, when the advertising role may
    /// hand routes to it internally (§2.1's "logical pass"). `None`
    /// when the ARR itself (or a role with no hand-off) advertises.
    pub(crate) arr: Option<&'a mut ArrRole>,
}

/// One protocol function of a router (paper Table 1 column), owning its
/// own Adj-RIB-In state and advertisement rules.
///
/// The shell drives every role through this trait: `absorb` applies
/// classified input, `reselect` contributes decision candidates,
/// `advertise` emits the role's updates after a decision, and the
/// remaining methods are RIB accounting and lifecycle.
pub trait Role {
    /// Applies a classified incoming replace-set to this role's
    /// Adj-RIB-In. Returns whether stored state changed (the shell
    /// recomputes affected prefixes).
    fn absorb(&mut self, ch: &mut Chassis, rx: Rx) -> bool;

    /// Contributes this role's decision candidates for `prefix` to the
    /// shell's reselection, applying the role's plane-acceptance rules
    /// (transition §2.4 filtering, reflector plane gating).
    fn reselect(&self, ch: &Chassis, prefix: &Ipv4Prefix, cands: &mut Vec<Candidate>);

    /// Emits this role's advertisements for `prefix` after a decision.
    fn advertise(
        &mut self,
        ch: &mut Chassis,
        ctx: &mut Ctx<BgpMsg>,
        prefix: Ipv4Prefix,
        env: &mut AdvertiseEnv<'_>,
    );

    /// Adj-RIB-In entries held by this role (the paper's RIB-In
    /// accounting).
    fn rib_in_entries(&self) -> usize;

    /// Every prefix this role currently holds state for.
    fn known_prefixes(&self) -> Vec<Ipv4Prefix>;

    /// The prefixes this role holds state for that overlap the
    /// inclusive address range `[range_start, range_end]`, in prefix
    /// order. The incremental path for Address-Partition choreography:
    /// cost scales with the overlap (pruned trie-range walk), not the
    /// table size.
    fn known_prefixes_in(&self, range_start: u32, range_end: u32) -> Vec<Ipv4Prefix>;

    /// `(trie index nodes, allocated value slots)` across this role's
    /// storage — the occupancy pair behind the `core.store.*` gauges.
    fn occupancy(&self) -> (usize, usize);

    /// Drops everything learned from `peer` (RFC 4271 §6 teardown).
    /// Returns the affected prefixes.
    fn drop_peer(&mut self, peer: RouterId) -> Vec<Ipv4Prefix>;

    /// Crash-restart with RIB loss: runtime state is gone,
    /// configuration survives.
    fn on_restart(&mut self);
}

/// Prepares an attribute set for iBGP injection: LOCAL_PREF defaulted.
/// Shared by the client (own-best injection) and TRR (reflection)
/// roles.
pub(crate) fn with_default_local_pref(attrs: &Arc<PathAttributes>) -> Arc<PathAttributes> {
    if attrs.local_pref.is_some() {
        return attrs.clone();
    }
    let mut a = (**attrs).clone();
    a.local_pref = Some(bgp_types::LocalPref::DEFAULT);
    bgp_types::intern(a)
}
