//! Border role: eBGP ingestion, local origination, and own-route
//! stickiness.
//!
//! This role has no iBGP plane of its own — its inputs are operator and
//! eBGP events delivered by the shell — but it seeds every other role's
//! view: the exit candidates (local + eBGP routes) it contributes via
//! [`Role::reselect`] are what the client, ARR, and TRR functions
//! redistribute.

use super::{AdvertiseEnv, Chassis, Role, Rx};
use crate::msg::BgpMsg;
use bgp_rib::{Candidate, PrefixSlab};
use bgp_types::{intern, Asn, Ipv4Prefix, NextHop, PathAttributes, RouteSource, RouterId};
use netsim::Ctx;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// An eBGP-learned route held at a border router.
#[derive(Clone, Debug)]
struct EbgpRoute {
    peer_as: Asn,
    attrs: Arc<PathAttributes>,
}

/// The border function of a router (paper Table 1, "Client ↔ eBGP
/// Neighbor" rows): eBGP Adj-RIB-In, locally-originated prefixes, and
/// the sticky own-route set the client role's §3.4 storage policy
/// consults.
pub struct BorderRole {
    /// eBGP Adj-RIB-In: prefix → (peer_addr → route). The outer table
    /// is a trie-indexed slab (lexicographic prefix iteration, pruned
    /// range queries); the inner map stays ordered because peer order
    /// reaches the decision process's candidate list.
    ebgp_in: PrefixSlab<BTreeMap<u32, EbgpRoute>>,
    /// Distinct eBGP session addresses ever seen (sessions outlive the
    /// routes they advertise; used for export accounting).
    ebgp_sessions: BTreeSet<u32>,
    /// Locally-originated prefixes.
    local_prefixes: BTreeSet<Ipv4Prefix>,
    /// Prefixes this node has *ever* originated or learned over eBGP
    /// (sticky). For these, the client role stores the full received
    /// path set instead of its reduced best: a reduced set could drop
    /// exactly the route that MED-eliminates one of our own routes,
    /// silently diverging from full-mesh semantics. Pure control-plane
    /// nodes never hit this and keep the paper's §3.4 one-best-per-RR
    /// storage, which is what the Appendix A client accounting counts.
    own_ever: BTreeSet<Ipv4Prefix>,
}

impl BorderRole {
    pub(crate) fn new() -> BorderRole {
        BorderRole {
            ebgp_in: PrefixSlab::new(),
            ebgp_sessions: BTreeSet::new(),
            local_prefixes: BTreeSet::new(),
            own_ever: BTreeSet::new(),
        }
    }

    /// Whether this router currently holds an eBGP or locally-originated
    /// route for `prefix` — i.e. whether it can act as the AS's exit.
    pub(crate) fn originates(&self, prefix: &Ipv4Prefix) -> bool {
        self.local_prefixes.contains(prefix) || self.ebgp_in.get(prefix).is_some()
    }

    /// Whether `prefix` is in the sticky own-route set (see field docs).
    pub(crate) fn own_ever_contains(&self, prefix: &Ipv4Prefix) -> bool {
        self.own_ever.contains(prefix)
    }

    /// eBGP Adj-RIB-In entries.
    pub(crate) fn ebgp_entries(&self) -> usize {
        self.ebgp_in.iter().map(|(_, m)| m.len()).sum()
    }

    /// The configured local prefixes (cloned: callers re-originate while
    /// mutating the node).
    pub(crate) fn local_prefixes(&self) -> Vec<Ipv4Prefix> {
        self.local_prefixes.iter().copied().collect()
    }

    /// eBGP announce: next-hop-self, scrub iBGP-internal attributes that
    /// must not leak in from outside, and store. The caller always
    /// recomputes the prefix.
    pub(crate) fn ebgp_announce(
        &mut self,
        ch: &mut Chassis,
        prefix: Ipv4Prefix,
        peer_as: Asn,
        peer_addr: u32,
        attrs: Arc<PathAttributes>,
    ) {
        ch.counters.ebgp_events += 1;
        if let Some(h) = ch.obs() {
            h.ebgp_events.inc();
        }
        let mut a = (*attrs).clone();
        a.next_hop = NextHop(ch.id.0);
        a.originator_id = None;
        a.cluster_list.clear();
        a.ext_communities.retain(|c| !c.is_abrr_reflected());
        self.own_ever.insert(prefix);
        self.ebgp_sessions.insert(peer_addr);
        self.ebgp_in
            .get_or_insert_with(prefix, BTreeMap::new)
            .insert(
                peer_addr,
                EbgpRoute {
                    peer_as,
                    attrs: intern(a),
                },
            );
    }

    /// eBGP withdraw. Returns whether a stored route was removed (the
    /// caller recomputes on change).
    pub(crate) fn ebgp_withdraw(
        &mut self,
        ch: &mut Chassis,
        prefix: Ipv4Prefix,
        peer_addr: u32,
    ) -> bool {
        ch.counters.ebgp_events += 1;
        if let Some(h) = ch.obs() {
            h.ebgp_events.inc();
        }
        let mut removed = false;
        let mut now_empty = false;
        if let Some(m) = self.ebgp_in.get_mut(&prefix) {
            removed = m.remove(&peer_addr).is_some();
            now_empty = m.is_empty();
        }
        if now_empty {
            self.ebgp_in.remove(&prefix);
        }
        removed
    }

    /// Local origination toggle. Returns whether the configured set
    /// changed.
    pub(crate) fn set_local(&mut self, prefix: Ipv4Prefix, announce: bool) -> bool {
        if announce {
            self.own_ever.insert(prefix);
            self.local_prefixes.insert(prefix)
        } else {
            self.local_prefixes.remove(&prefix)
        }
    }
}

impl Role for BorderRole {
    fn absorb(&mut self, _ch: &mut Chassis, _rx: Rx) -> bool {
        // The border role has no iBGP plane; classification never
        // routes an update here. Its inputs arrive as external events
        // via the inherent methods above.
        debug_assert!(false, "border role received iBGP input");
        false
    }

    fn reselect(&self, ch: &Chassis, prefix: &Ipv4Prefix, cands: &mut Vec<Candidate>) {
        if self.local_prefixes.contains(prefix) {
            cands.push(Candidate {
                attrs: intern(PathAttributes::local(NextHop(ch.id.0))),
                source: RouteSource::Local,
                neighbor_id: ch.id.0,
            });
        }
        if let Some(peers) = self.ebgp_in.get(prefix) {
            for (peer_addr, r) in peers {
                cands.push(Candidate {
                    attrs: r.attrs.clone(),
                    source: RouteSource::Ebgp {
                        peer_as: r.peer_as,
                        peer_addr: *peer_addr,
                    },
                    neighbor_id: *peer_addr,
                });
            }
        }
    }

    fn advertise(
        &mut self,
        ch: &mut Chassis,
        _ctx: &mut Ctx<BgpMsg>,
        _prefix: Ipv4Prefix,
        env: &mut AdvertiseEnv<'_>,
    ) {
        // Table 1, "Client → eBGP Neighbor: all best routes (not
        // returned to sender)". External peers are not simulated; count
        // the exports a border router would emit: one per eBGP session,
        // minus the session the best was learned from.
        if !env.sel_changed {
            return;
        }
        let n_sessions = self.ebgp_sessions.len() as u64;
        if n_sessions > 0 {
            let learned_here =
                matches!(env.sel.map(|s| s.source), Some(RouteSource::Ebgp { .. })) as u64;
            let exported = n_sessions.saturating_sub(learned_here);
            ch.counters.ebgp_exported += exported;
            if let Some(h) = ch.obs() {
                h.ebgp_exported.add(exported);
            }
        }
    }

    fn rib_in_entries(&self) -> usize {
        self.ebgp_entries()
    }

    fn known_prefixes(&self) -> Vec<Ipv4Prefix> {
        let mut v: Vec<Ipv4Prefix> = self.ebgp_in.iter().map(|(p, _)| *p).collect();
        v.extend(self.local_prefixes.iter().copied());
        v
    }

    fn known_prefixes_in(&self, range_start: u32, range_end: u32) -> Vec<Ipv4Prefix> {
        let mut v: Vec<Ipv4Prefix> = self
            .ebgp_in
            .iter_overlapping(range_start, range_end)
            .map(|(p, _)| *p)
            .collect();
        v.extend(
            self.local_prefixes
                .iter()
                .filter(|p| p.first_addr() <= range_end && p.last_addr() >= range_start)
                .copied(),
        );
        v.sort();
        v.dedup();
        v
    }

    fn occupancy(&self) -> (usize, usize) {
        (self.ebgp_in.index_nodes(), self.ebgp_in.slot_capacity())
    }

    fn drop_peer(&mut self, _peer: RouterId) -> Vec<Ipv4Prefix> {
        // iBGP session teardown does not affect eBGP state.
        Vec::new()
    }

    fn on_restart(&mut self) {
        // eBGP-learned state is runtime; the configured local prefixes
        // survive, and stickiness resets to exactly them.
        self.ebgp_in.clear();
        self.ebgp_sessions.clear();
        self.own_ever = self.local_prefixes.clone();
    }
}
