//! Client role: the data-plane function every router runs (paper
//! §2.1). Holds the mesh/ABRR-plane and TBRR-plane Adj-RIB-Ins with the
//! §3.4 reduced-storage policy, and advertises the router's best route
//! up to its reflectors (or the full mesh).

use super::{with_default_local_pref, AdvertiseEnv, Chassis, Role, Rx};
use crate::msg::{BgpMsg, Plane};
use crate::node::group;
use crate::spec::{Mode, NetworkSpec};
use bgp_rib::{best_path, AdjRibIn, Candidate, PathSet};
use bgp_types::{Ipv4Prefix, PathAttributes, PathId, RouteSource, RouterId};
use netsim::Ctx;
use std::sync::Arc;

/// The client function of a router: one Adj-RIB-In per reflection
/// plane, reduced to best-per-peer for multi-path senders (§3.4), plus
/// the client-side TBRR session configuration.
pub struct ClientRole {
    /// Client-role iBGP Adj-RIB-In for the mesh/ABRR planes.
    client_in: AdjRibIn,
    /// Client-role Adj-RIB-In for the TBRR plane. Kept separate so the
    /// §2.4 transition can accept one plane per AP even when the same
    /// physical router is both an ARR and a TRR.
    client_in_tbrr: AdjRibIn,
    /// TBRR: this node's TRRs (client side), empty if none.
    my_trrs: Vec<RouterId>,
    /// Whether this router also runs the TRR function. Fixed at
    /// construction (cluster assignment is static); gates the
    /// client→TRR advertisement (a TRR's own routes flow via TRR
    /// rules, Table 1).
    is_trr_node: bool,
}

impl ClientRole {
    pub(crate) fn new(id: RouterId, spec: &NetworkSpec) -> ClientRole {
        ClientRole {
            client_in: AdjRibIn::new(),
            client_in_tbrr: AdjRibIn::new(),
            my_trrs: spec.trrs_of_client(id),
            is_trr_node: !spec.trr_clusters_of(id).is_empty(),
        }
    }

    /// Materializes the client side's peer groups: the full mesh, the
    /// client→ARR group per address partition, and the client→TRR group.
    pub(crate) fn install_groups(&self, ch: &mut Chassis) {
        match ch.spec.mode {
            Mode::FullMesh => {
                let members: Vec<RouterId> = ch
                    .spec
                    .all_nodes()
                    .into_iter()
                    .filter(|n| *n != ch.id)
                    .collect();
                ch.out.define_group(group::MESH, members);
            }
            _ => {
                if ch.spec.mode.has_abrr() {
                    if let Some(map) = &ch.spec.ap_map {
                        for part in map.partitions() {
                            let ap = part.id;
                            ch.out.define_group(
                                group::CLIENT_TO_ARRS + ap.0 as u32,
                                ch.spec.arrs_of(ap).to_vec(),
                            );
                        }
                    }
                }
                if ch.spec.mode.has_tbrr() && !self.my_trrs.is_empty() {
                    ch.out
                        .define_group(group::CLIENT_TO_TRRS, self.my_trrs.clone());
                }
            }
        }
    }

    /// The TRRs this router is a client of (shell classification).
    pub(crate) fn my_trrs(&self) -> &[RouterId] {
        &self.my_trrs
    }

    /// The stored paths from `peer` for `prefix` (post-reduction),
    /// whichever plane holds them.
    pub(crate) fn paths_from(
        &self,
        peer: RouterId,
        prefix: &Ipv4Prefix,
    ) -> &[(PathId, Arc<PathAttributes>)] {
        let mesh_abrr = self.client_in.paths(peer, prefix);
        if mesh_abrr.is_empty() {
            self.client_in_tbrr.paths(peer, prefix)
        } else {
            mesh_abrr
        }
    }

    /// Candidates for a pre-installed backup exit: every stored route
    /// whose exit differs from `primary` (§3.2/§3.4 extension).
    pub(crate) fn backup_candidates(
        &self,
        prefix: &Ipv4Prefix,
        primary: RouterId,
    ) -> Vec<Candidate> {
        let mut cands: Vec<Candidate> = Vec::new();
        for rib in [&self.client_in, &self.client_in_tbrr] {
            for (peer, _pid, attrs) in rib.all_paths(prefix) {
                if RouterId(attrs.next_hop.0) != primary {
                    cands.push(Candidate {
                        attrs: attrs.clone(),
                        source: RouteSource::Ibgp { peer },
                        neighbor_id: peer.0,
                    });
                }
            }
        }
        cands
    }

    /// Drops reflected routes learned from `arr` for prefixes covered by
    /// `ap` (runtime AP reassignment: a losing ARR's withdrawals would
    /// no longer classify, so the client drops proactively). Returns the
    /// affected prefixes.
    pub(crate) fn drop_from_arr(
        &mut self,
        ch: &Chassis,
        ap: bgp_types::ApId,
        arr: RouterId,
    ) -> Vec<Ipv4Prefix> {
        // Gather the AP's covered prefixes by pruned trie-range walk
        // (range overlap is exactly `Partition::covers`), not a
        // full-table scan.
        let mut covered: std::collections::BTreeSet<Ipv4Prefix> = std::collections::BTreeSet::new();
        for r in ch.ap_ranges(ap) {
            covered.extend(self.client_in.known_prefixes_in(r.start(), r.end()));
        }
        let mut affected = Vec::new();
        for p in covered {
            if !self.client_in.paths(arr, &p).is_empty() && self.client_in.withdraw(arr, p) {
                affected.push(p);
            }
        }
        affected
    }
}

impl Role for ClientRole {
    /// Client-role receive: reduce multi-path sets to our single best
    /// (paper §3.4) and store per sender.
    fn absorb(&mut self, ch: &mut Chassis, rx: Rx) -> bool {
        let Rx {
            from,
            plane,
            prefix,
            paths,
            own_ever,
        } = rx;
        let before = paths.len();
        let mut paths: PathSet = paths
            .into_iter()
            .filter(|(_, a)| a.originator_id.map(|o| o.0) != Some(ch.id.0))
            .collect();
        ch.counters.loop_prevented += (before - paths.len()) as u64;
        if paths.len() > 1 && !own_ever {
            let cands: Vec<Candidate> = paths
                .iter()
                .map(|(_, a)| Candidate {
                    attrs: a.clone(),
                    source: RouteSource::Ibgp { peer: from },
                    neighbor_id: from.0,
                })
                .collect();
            let igp = ch.igp_metric_fn();
            let best = best_path(&cands, &ch.spec.decision, &igp);
            // §3.2/§3.4 extension: optionally retain the runner-up as a
            // pre-installed fast-reroute backup.
            let backup = if ch.spec.clients_keep_backups {
                best.and_then(|b| {
                    let rest: Vec<Candidate> = cands
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != b)
                        .map(|(_, c)| c.clone())
                        .collect();
                    best_path(&rest, &ch.spec.decision, &igp).map(|j| {
                        // Map back to the original index.
                        let mut k = 0;
                        let mut orig = 0;
                        for i in 0..cands.len() {
                            if i == b {
                                continue;
                            }
                            if k == j {
                                orig = i;
                                break;
                            }
                            k += 1;
                        }
                        orig
                    })
                })
            } else {
                None
            };
            drop(igp);
            paths = match (best, backup) {
                (Some(i), Some(j)) => vec![paths[i].clone(), paths[j].clone()],
                (Some(i), None) => vec![paths[i].clone()],
                (None, _) => Vec::new(),
            };
        }
        let rib = match plane {
            Plane::Tbrr => &mut self.client_in_tbrr,
            Plane::Mesh | Plane::Abrr => &mut self.client_in,
        };
        rib.set_paths(from, prefix, paths)
    }

    fn reselect(&self, ch: &Chassis, prefix: &Ipv4Prefix, cands: &mut Vec<Candidate>) {
        let use_abrr = ch.use_abrr_for(prefix);
        // Mesh/ABRR-plane routes: accepted except for a transition
        // router whose AP has not been cut over yet.
        let accept_mesh_abrr = match ch.spec.mode {
            Mode::FullMesh | Mode::Abrr => true,
            Mode::Tbrr { .. } => false,
            Mode::Transition => use_abrr,
        };
        if accept_mesh_abrr {
            for (peer, _pid, attrs) in self.client_in.all_paths(prefix) {
                cands.push(Candidate {
                    attrs: attrs.clone(),
                    source: RouteSource::Ibgp { peer },
                    neighbor_id: peer.0,
                });
            }
        }
        // TBRR-plane routes: accepted in TBRR mode, or pre-cutover in
        // transition.
        let accept_tbrr = match ch.spec.mode {
            Mode::Tbrr { .. } => true,
            Mode::Transition => !use_abrr,
            _ => false,
        };
        if accept_tbrr {
            for (peer, _pid, attrs) in self.client_in_tbrr.all_paths(prefix) {
                cands.push(Candidate {
                    attrs: attrs.clone(),
                    source: RouteSource::Ibgp { peer },
                    neighbor_id: peer.0,
                });
            }
        }
    }

    /// The client function's advertisement step (Table 1 rows
    /// "Client → ARR" / "Client → TRR" / full-mesh row): advertise the
    /// best route iff it is other-learned; withdraw otherwise. The
    /// hand-off to this router's *own* ARR function travels through
    /// `AdvertiseEnv::arr` (§2.1's logical pass), not a session.
    fn advertise(
        &mut self,
        ch: &mut Chassis,
        ctx: &mut Ctx<BgpMsg>,
        prefix: Ipv4Prefix,
        env: &mut AdvertiseEnv<'_>,
    ) {
        let adv: PathSet = match env.sel {
            Some(s) if s.source.is_other_learned() => {
                vec![(PathId(ch.id.0), with_default_local_pref(&s.attrs))]
            }
            _ => Vec::new(),
        };
        let adv_shared: Arc<PathSet> = Arc::new(adv.clone());
        match ch.spec.mode {
            Mode::FullMesh => {
                ch.advertise_group(ctx, group::MESH, prefix, Plane::Mesh, adv, |_| false);
            }
            _ => {
                if ch.spec.mode.has_abrr() {
                    for ap in ch.aps_for_prefix(&prefix) {
                        let g = group::CLIENT_TO_ARRS + ap.0 as u32;
                        let changed = ch.out.set_paths(g, prefix, adv.clone());
                        if !changed {
                            continue;
                        }
                        ch.counters.generated += 1;
                        for arr in ch.out.members(g).to_vec() {
                            if arr == ch.id {
                                // Logical pass to our own ARR function.
                                if let Some(own_arr) = env.arr.as_deref_mut() {
                                    own_arr.input_internal(ch, ctx, prefix, (*adv_shared).clone());
                                }
                            } else {
                                ch.transmit(
                                    ctx,
                                    arr,
                                    BgpMsg {
                                        prefix,
                                        paths: adv_shared.clone(),
                                        plane: Plane::Abrr,
                                    },
                                );
                            }
                        }
                    }
                }
                if ch.spec.mode.has_tbrr() && !self.is_trr_node && !self.my_trrs.is_empty() {
                    ch.advertise_group(
                        ctx,
                        group::CLIENT_TO_TRRS,
                        prefix,
                        Plane::Tbrr,
                        adv,
                        |_| false,
                    );
                }
            }
        }
    }

    fn rib_in_entries(&self) -> usize {
        self.client_in.num_entries() + self.client_in_tbrr.num_entries()
    }

    fn known_prefixes(&self) -> Vec<Ipv4Prefix> {
        let mut v = self.client_in.known_prefixes();
        v.extend(self.client_in_tbrr.known_prefixes());
        v
    }

    fn known_prefixes_in(&self, range_start: u32, range_end: u32) -> Vec<Ipv4Prefix> {
        let mut v = self.client_in.known_prefixes_in(range_start, range_end);
        v.extend(
            self.client_in_tbrr
                .known_prefixes_in(range_start, range_end),
        );
        v.sort();
        v.dedup();
        v
    }

    fn occupancy(&self) -> (usize, usize) {
        let (n1, s1) = self.client_in.occupancy();
        let (n2, s2) = self.client_in_tbrr.occupancy();
        (n1 + n2, s1 + s2)
    }

    fn drop_peer(&mut self, peer: RouterId) -> Vec<Ipv4Prefix> {
        let mut affected = self.client_in.drop_peer(peer);
        affected.extend(self.client_in_tbrr.drop_peer(peer));
        affected
    }

    fn on_restart(&mut self) {
        self.client_in = AdjRibIn::new();
        self.client_in_tbrr = AdjRibIn::new();
    }
}
