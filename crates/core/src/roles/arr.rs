//! ARR role (paper §2.1, Table 1 right column): address-partition
//! route reflection. Holds the managed-route Adj-RIB-In for the APs
//! this router serves and advertises the *best AS-level routes* to all
//! clients, with the §2.3.2 reflected-bit / cluster-list loop
//! prevention.

use super::{AdvertiseEnv, Chassis, Role, Rx};
use crate::msg::{BgpMsg, Plane};
use crate::node::group;
use crate::spec::{AbrrLoopPrevention, Mode, NetworkSpec};
use bgp_rib::{AdjRibIn, Candidate, CandidateBatch, PathSet};
use bgp_types::{intern, ApId, ClusterId, Ipv4Prefix, OriginatorId, PathId, RouteSource, RouterId};
use netsim::Ctx;

/// The ARR function of a router: the managed-route table for its
/// address partitions.
pub struct ArrRole {
    /// ARR-role Adj-RIB-In (managed routes).
    arr_in: AdjRibIn,
    /// APs this node reflects. Mutable at runtime (§2.2 reassignment).
    arr_aps: Vec<ApId>,
    /// Reusable struct-of-arrays scratch for the steps 1–4 survivor
    /// scan: one recompute per managed-route change makes this the
    /// ARR's hottest decision path, so the scan runs over dense
    /// columns instead of pointer-chased attributes.
    batch: CandidateBatch,
}

impl ArrRole {
    pub(crate) fn new(id: RouterId, spec: &NetworkSpec) -> ArrRole {
        ArrRole {
            arr_in: AdjRibIn::new(),
            arr_aps: spec.arr_aps_of(id),
            batch: CandidateBatch::new(),
        }
    }

    /// Materializes the ARR→clients peer group per served AP
    /// ("to all clients (excluding other ARRs for the same AP)" —
    /// Appendix A.1).
    pub(crate) fn install_groups(&self, ch: &mut Chassis) {
        if ch.spec.mode == Mode::FullMesh || !ch.spec.mode.has_abrr() {
            return;
        }
        for ap in &self.arr_aps {
            let co_arrs = ch.spec.arrs_of(*ap).to_vec();
            let members: Vec<RouterId> = ch
                .spec
                .client_role_nodes()
                .into_iter()
                .filter(|n| *n != ch.id && !co_arrs.contains(n))
                .collect();
            ch.out
                .define_group(group::ARR_TO_CLIENTS + ap.0 as u32, members);
        }
    }

    /// The APs this router currently serves (shell classification).
    pub(crate) fn aps(&self) -> &[ApId] {
        &self.arr_aps
    }

    /// The managed paths currently stored from `peer` for `prefix`.
    pub(crate) fn paths_from(
        &self,
        peer: RouterId,
        prefix: &Ipv4Prefix,
    ) -> &[(PathId, std::sync::Arc<bgp_types::PathAttributes>)] {
        self.arr_in.paths(peer, prefix)
    }

    /// Internal logical pass from this router's own client function
    /// (§2.1: no iBGP message between a router's own roles).
    pub(crate) fn input_internal(
        &mut self,
        ch: &mut Chassis,
        ctx: &mut Ctx<BgpMsg>,
        prefix: Ipv4Prefix,
        paths: PathSet,
    ) {
        if self.arr_in.set_paths(ch.id, prefix, paths) {
            self.recompute(ch, ctx, prefix);
            // No client recompute here: the caller is our own client
            // function, which already selected.
        }
    }

    /// Recomputes the best AS-level route set for `prefix` and
    /// advertises it to all clients (Table 1: "ARR → Client: best
    /// AS-level routes, not returned to sender").
    pub(crate) fn recompute(
        &mut self,
        ch: &mut Chassis,
        ctx: &mut Ctx<BgpMsg>,
        prefix: Ipv4Prefix,
    ) {
        let cands: Vec<Candidate> = self
            .arr_in
            .all_paths(&prefix)
            .map(|(peer, _pid, attrs)| Candidate {
                attrs: attrs.clone(),
                source: RouteSource::Ibgp { peer },
                neighbor_id: peer.0,
            })
            .collect();
        self.batch.load(&cands);
        let surv = self.batch.survivors(&ch.spec.decision);
        let set: PathSet = surv
            .iter()
            .map(|&i| {
                let c = &cands[i];
                let mut a = (*c.attrs).clone();
                // Stamp provenance so clients can tie-break by true
                // originator and so the sender-exclusion works.
                if a.originator_id.is_none() {
                    a.originator_id = Some(OriginatorId(c.neighbor_id));
                }
                match ch.spec.abrr_loop_prevention {
                    AbrrLoopPrevention::ReflectedBit => {
                        a = a.with_abrr_reflected();
                    }
                    AbrrLoopPrevention::ClusterList => {
                        // RFC 4456 default: cluster id = router id.
                        a.cluster_list.insert(0, ClusterId(ch.id.0));
                    }
                    AbrrLoopPrevention::None => {}
                }
                (PathId(a.originator_id.expect("set").0), intern(a))
            })
            .collect();
        for ap in self.arr_aps.clone() {
            if !ch.ap_covers(ap, &prefix) {
                continue;
            }
            let g = group::ARR_TO_CLIENTS + ap.0 as u32;
            // advertise_group() handles change detection and per-member
            // originator filtering.
            ch.advertise_group(ctx, g, prefix, Plane::Abrr, set.clone(), |_| false);
        }
    }

    /// Runtime AP reassignment, losing side (§2.2): withdraw everything
    /// reflected for `ap`, drop the role, and evict managed routes no
    /// remaining role covers (a prefix can span APs).
    pub(crate) fn lose_ap(&mut self, ch: &mut Chassis, ctx: &mut Ctx<BgpMsg>, ap: ApId) {
        let g = group::ARR_TO_CLIENTS + ap.0 as u32;
        let prefixes: Vec<Ipv4Prefix> = ch.out.iter_group(g).map(|(p, _)| *p).collect();
        for p in prefixes {
            ch.advertise_group(ctx, g, p, Plane::Abrr, Vec::new(), |_| false);
        }
        ch.out.reset_group(g, Vec::new());
        self.arr_aps.retain(|a| *a != ap);
        let peers: Vec<RouterId> = self.arr_in.peers().collect();
        // Evict managed routes no remaining AP covers, gathering the
        // lost AP's prefixes by pruned trie-range walk (range overlap
        // is exactly `Partition::covers`), not a full-table scan.
        let mut covered: std::collections::BTreeSet<Ipv4Prefix> = std::collections::BTreeSet::new();
        for r in ch.ap_ranges(ap) {
            covered.extend(self.arr_in.known_prefixes_in(r.start(), r.end()));
        }
        for p in covered {
            let still_served = self.arr_aps.iter().any(|a2| ch.ap_covers(*a2, &p));
            if !still_served {
                for peer in &peers {
                    self.arr_in.withdraw(*peer, p);
                }
            }
        }
    }

    /// Runtime AP reassignment, gaining side (§2.2): take the role and
    /// open an (empty) client group that fills as clients re-advertise.
    pub(crate) fn gain_ap(&mut self, ch: &mut Chassis, ap: ApId, new_arrs: &[RouterId]) {
        self.arr_aps.push(ap);
        self.arr_aps.sort();
        let members: Vec<RouterId> = ch
            .spec
            .client_role_nodes()
            .into_iter()
            .filter(|n| *n != ch.id && !new_arrs.contains(n))
            .collect();
        ch.out
            .reset_group(group::ARR_TO_CLIENTS + ap.0 as u32, members);
    }
}

impl Role for ArrRole {
    /// ARR-role input arriving over a session, with §2.3.2 loop
    /// prevention: an update already reflected by an ARR must never be
    /// reflected again. The paper's single marker bit stops it at the
    /// first re-reflection; CLUSTER_LIST lets it circulate once before
    /// the stamping ARR recognizes its own id.
    fn absorb(&mut self, ch: &mut Chassis, rx: Rx) -> bool {
        let Rx {
            from,
            prefix,
            paths,
            ..
        } = rx;
        let looped = match ch.spec.abrr_loop_prevention {
            AbrrLoopPrevention::ReflectedBit => paths.iter().any(|(_, a)| a.is_abrr_reflected()),
            AbrrLoopPrevention::ClusterList => paths
                .iter()
                .any(|(_, a)| a.cluster_list.contains(&ClusterId(ch.id.0))),
            AbrrLoopPrevention::None => false,
        };
        if looped {
            ch.counters.loop_prevented += 1;
            return false;
        }
        self.arr_in.set_paths(from, prefix, paths)
    }

    fn reselect(&self, ch: &Chassis, prefix: &Ipv4Prefix, cands: &mut Vec<Candidate>) {
        // An ARR's client function sees its managed routes internally
        // (the "logical pass" of §2.1) rather than via a session. Its
        // OWN advertisements are excluded: a router never receives its
        // own route back in full-mesh ("not returned to sender"), and
        // considering the echo here can wedge the node on a stale copy
        // of a route it has since withdrawn (its real eBGP/local routes
        // already entered the candidate set via the border role).
        if ch.spec.mode.has_abrr()
            && (ch.spec.mode == Mode::Abrr || ch.use_abrr_for(prefix))
            && self.arr_aps.iter().any(|ap| ch.ap_covers(*ap, prefix))
        {
            for (peer, _pid, attrs) in self.arr_in.all_paths(prefix) {
                if peer == ch.id {
                    continue;
                }
                cands.push(Candidate {
                    attrs: attrs.clone(),
                    source: RouteSource::Ibgp { peer },
                    neighbor_id: peer.0,
                });
            }
        }
    }

    /// The ARR's advertisement depends only on its managed table, not
    /// on the router's decision, so `env` is unused: this delegates to
    /// `ArrRole::recompute`, which the shell drives whenever managed
    /// state changes (batch absorption, peer purge, AP reassignment,
    /// the internal logical pass) rather than on every decision.
    fn advertise(
        &mut self,
        ch: &mut Chassis,
        ctx: &mut Ctx<BgpMsg>,
        prefix: Ipv4Prefix,
        _env: &mut AdvertiseEnv<'_>,
    ) {
        self.recompute(ch, ctx, prefix);
    }

    fn rib_in_entries(&self) -> usize {
        self.arr_in.num_entries()
    }

    fn known_prefixes(&self) -> Vec<Ipv4Prefix> {
        self.arr_in.known_prefixes()
    }

    fn known_prefixes_in(&self, range_start: u32, range_end: u32) -> Vec<Ipv4Prefix> {
        self.arr_in.known_prefixes_in(range_start, range_end)
    }

    fn occupancy(&self) -> (usize, usize) {
        self.arr_in.occupancy()
    }

    fn drop_peer(&mut self, peer: RouterId) -> Vec<Ipv4Prefix> {
        self.arr_in.drop_peer(peer)
    }

    fn on_restart(&mut self) {
        self.arr_in = AdjRibIn::new();
    }
}
