//! Network specification: who plays which role, how sessions are laid
//! out, and construction of a ready-to-run simulator.

use crate::msg::{BgpMsg, ExternalEvent};
use crate::node::BgpNode;
use bgp_rib::DecisionConfig;
use bgp_types::{ApId, ApMap, Asn, RouterId};
use igp::{IgpOracle, Topology};
use netsim::{Sim, Time};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Which iBGP scheme the AS runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Full-mesh iBGP: every router peers with every other (the
    /// correctness baseline the paper's ABRR emulates).
    FullMesh,
    /// Address-Based Route Reflection (the paper's contribution).
    Abrr,
    /// Topology-Based Route Reflection; `multipath` selects the paper's
    /// Appendix A.3 variant where TRRs advertise all best AS-level
    /// routes instead of a single best.
    Tbrr {
        /// Advertise all best AS-level routes between/below TRRs.
        multipath: bool,
    },
    /// §2.4 incremental transition: routers run both TBRR and ABRR
    /// session sets, initially accept TBRR routes for every AP, and cut
    /// over AP-by-AP via [`ExternalEvent::CutoverAp`].
    Transition,
}

impl Mode {
    /// Whether ABRR machinery (APs, ARRs) is active.
    pub fn has_abrr(&self) -> bool {
        matches!(self, Mode::Abrr | Mode::Transition)
    }

    /// Whether TBRR machinery (clusters, TRRs) is active.
    pub fn has_tbrr(&self) -> bool {
        matches!(self, Mode::Tbrr { .. } | Mode::Transition)
    }

    /// Whether TRRs advertise multiple paths.
    pub fn tbrr_multipath(&self) -> bool {
        matches!(self, Mode::Tbrr { multipath: true })
    }
}

/// A TBRR cluster: its id, reflectors, and client membership. A client
/// may appear in several clusters (the Tier-1 AS the paper measured has
/// ~20% of clients in two clusters, §4.2 footnote).
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// The cluster id carried in CLUSTER_LIST.
    pub id: u32,
    /// The cluster's route reflectors.
    pub trrs: Vec<RouterId>,
    /// The cluster's clients.
    pub clients: Vec<RouterId>,
}

/// ABRR's loop-prevention mechanism (§2.3.2). The paper notes that
/// "either loop-detection mechanism used by route reflectors today, the
/// Cluster List or the Originator ID, can be used to break loops in
/// ABRR", but that both are overkill: "all that is needed ... is a
/// single bit indicating that the update has been reflected by an ARR"
/// — their implementation (and our default) uses an extended-community
/// marker. The alternatives exist for the ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbrrLoopPrevention {
    /// The single-bit extended community (paper's choice). Stops a
    /// reflected update at the *first* mistaken re-reflection.
    ReflectedBit,
    /// RFC 4456-style CLUSTER_LIST (ARR cluster id = router id). A
    /// mistakenly looping update circulates once before the stamping
    /// ARR sees its own id and drops it — correct but later and fatter.
    ClusterList,
    /// No ARR-level prevention (ablation baseline): only the
    /// originator-id check at clients and replace-set deduplication
    /// stand between a misconfiguration and a loop.
    None,
}

/// How session latencies are assigned.
#[derive(Clone, Copy, Debug)]
pub enum LatencyModel {
    /// Every session has the same one-way latency (µs).
    Fixed(Time),
    /// Latency grows with IGP distance: `base + per_metric × d` (µs).
    /// This is what creates the cross-cluster race conditions the paper
    /// observes in §4.2.
    IgpProportional {
        /// Fixed per-session component (µs).
        base: Time,
        /// Additional µs per unit of IGP metric.
        per_metric: Time,
    },
}

/// The complete, immutable description of one experimental AS.
#[derive(Clone, Debug)]
pub struct NetworkSpec {
    /// The local AS number.
    pub asn: Asn,
    /// iBGP scheme.
    pub mode: Mode,
    /// Data-plane routers (clients). RRs may be listed here too (then
    /// they are border-capable) or only referenced from `arrs`/
    /// `clusters` (pure control-plane devices).
    pub routers: Vec<RouterId>,
    /// IGP all-pairs state.
    pub oracle: Arc<IgpOracle>,
    /// Decision-process configuration.
    pub decision: DecisionConfig,
    /// MRAI interval in µs (0 disables; paper §3.5 default is 5 s).
    pub mrai_us: Time,
    /// ABRR address partitions (required when `mode.has_abrr()`).
    pub ap_map: Option<ApMap>,
    /// ARRs per AP.
    pub arrs: BTreeMap<ApId, Vec<RouterId>>,
    /// TBRR clusters.
    pub clusters: Vec<ClusterSpec>,
    /// Whether pure control-plane RRs also act as clients, maintaining
    /// the full DFZ table (the paper's Appendix A accounting assumes
    /// they do: "an ARR, in its role as a client").
    pub rrs_are_clients: bool,
    /// Whether to compute wire-format byte counts on each transmission
    /// (costs CPU; enable for the §4.2 bandwidth experiment).
    pub account_bytes: bool,
    /// ABRR loop-prevention mechanism (§2.3.2 ablation knob).
    pub abrr_loop_prevention: AbrrLoopPrevention,
    /// §3.2/§3.4 extension: clients keep the runner-up route from each
    /// received best-AS-level set alongside their best ("ABRR clients
    /// can choose to store multiple routes for the purposes of traffic
    /// engineering or fast re-route"). Doubles the client-role RIB-In
    /// for multi-path senders; enables instant local repair when the
    /// primary exit dies, without waiting for an ARR round trip.
    pub clients_keep_backups: bool,
    /// Base per-node update-processing delay (µs): received updates are
    /// queued and the queue is drained as a batch after this delay,
    /// modelling the router's BGP work queue. Batching is the mechanism
    /// behind the paper's §4.2 observation that an ARR "will normally
    /// have received most or all of these updates by the time it
    /// actually processes them" and so emits one combined update. Zero
    /// processes each message immediately.
    pub proc_delay_base_us: Time,
    /// Per-node spread added to the base delay (deterministically from
    /// the node id), modelling unequal queue depths.
    pub proc_delay_spread_us: Time,
    /// Processing delay base for route-reflector nodes (ARR/TRR role).
    /// RRs carry far deeper work queues than border routers; the paper
    /// observed the same routing event processed by different TRRs
    /// "at different times (by 100's of ms to several seconds)" — that
    /// skew multiplies TBRR updates (racing TRRs re-advertise) but not
    /// ABRR updates (one ARR is the only decision point per prefix).
    pub rr_proc_delay_base_us: Time,
    /// Processing-delay spread for RR nodes.
    pub rr_proc_delay_spread_us: Time,
    /// Session latency model.
    pub latency: LatencyModel,
}

impl NetworkSpec {
    /// A minimal full-mesh spec over the given topology's routers.
    pub fn full_mesh(topology: &Topology, asn: Asn) -> NetworkSpec {
        NetworkSpec {
            asn,
            mode: Mode::FullMesh,
            routers: topology.routers().collect(),
            oracle: Arc::new(IgpOracle::compute(topology)),
            decision: DecisionConfig::default(),
            mrai_us: 0,
            ap_map: None,
            arrs: BTreeMap::new(),
            clusters: Vec::new(),
            rrs_are_clients: true,
            account_bytes: false,
            abrr_loop_prevention: AbrrLoopPrevention::ReflectedBit,
            clients_keep_backups: false,
            proc_delay_base_us: 0,
            proc_delay_spread_us: 0,
            rr_proc_delay_base_us: 0,
            rr_proc_delay_spread_us: 0,
            latency: LatencyModel::Fixed(1_000),
        }
    }

    /// The APs for which `r` is an ARR.
    pub fn arr_aps_of(&self, r: RouterId) -> Vec<ApId> {
        self.arrs
            .iter()
            .filter(|(_, v)| v.contains(&r))
            .map(|(ap, _)| *ap)
            .collect()
    }

    /// The ARRs responsible for `ap`.
    pub fn arrs_of(&self, ap: ApId) -> &[RouterId] {
        self.arrs.get(&ap).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Whether `r` is an ARR for any AP.
    pub fn is_arr(&self, r: RouterId) -> bool {
        self.arrs.values().any(|v| v.contains(&r))
    }

    /// Whether `r` is an ARR for an AP covering `prefix`.
    pub fn is_arr_for_prefix(&self, r: RouterId, prefix: &bgp_types::Ipv4Prefix) -> bool {
        let Some(map) = &self.ap_map else {
            return false;
        };
        map.aps_for_prefix(prefix)
            .iter()
            .any(|ap| self.arrs_of(*ap).contains(&r))
    }

    /// Cluster ids `r` reflects for.
    pub fn trr_clusters_of(&self, r: RouterId) -> Vec<u32> {
        self.clusters
            .iter()
            .filter(|c| c.trrs.contains(&r))
            .map(|c| c.id)
            .collect()
    }

    /// Whether `r` is a TRR.
    pub fn is_trr(&self, r: RouterId) -> bool {
        self.clusters.iter().any(|c| c.trrs.contains(&r))
    }

    /// The clients of TRR `r` (over all clusters it serves), deduped.
    pub fn clients_of_trr(&self, r: RouterId) -> Vec<RouterId> {
        let mut v: Vec<RouterId> = self
            .clusters
            .iter()
            .filter(|c| c.trrs.contains(&r))
            .flat_map(|c| c.clients.iter().copied())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// The TRRs serving client `r` (over all its clusters), deduped.
    pub fn trrs_of_client(&self, r: RouterId) -> Vec<RouterId> {
        let mut v: Vec<RouterId> = self
            .clusters
            .iter()
            .filter(|c| c.clients.contains(&r))
            .flat_map(|c| c.trrs.iter().copied())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// All TRRs in the AS, deduped.
    pub fn all_trrs(&self) -> Vec<RouterId> {
        let mut v: Vec<RouterId> = self
            .clusters
            .iter()
            .flat_map(|c| c.trrs.iter().copied())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// All ARRs in the AS, deduped.
    pub fn all_arrs(&self) -> Vec<RouterId> {
        let mut v: Vec<RouterId> = self.arrs.values().flatten().copied().collect();
        v.sort();
        v.dedup();
        v
    }

    /// Every node in the AS: routers plus any RR referenced only from
    /// role tables.
    pub fn all_nodes(&self) -> Vec<RouterId> {
        let mut v = self.routers.clone();
        v.extend(self.all_arrs());
        v.extend(self.all_trrs());
        v.sort();
        v.dedup();
        v
    }

    /// Every node with the client role: the data-plane routers, plus
    /// RRs when `rrs_are_clients`.
    pub fn client_role_nodes(&self) -> Vec<RouterId> {
        if self.rrs_are_clients {
            self.all_nodes()
        } else {
            let mut v = self.routers.clone();
            v.sort();
            v.dedup();
            v
        }
    }

    /// The update-processing delay for a node: base plus a
    /// deterministic per-node component in `[0, spread)`. RR-role nodes
    /// use the (typically much larger) RR parameters.
    pub fn proc_delay(&self, node: RouterId) -> Time {
        let (base, spread) = if self.is_arr(node) || self.is_trr(node) {
            (self.rr_proc_delay_base_us, self.rr_proc_delay_spread_us)
        } else {
            (self.proc_delay_base_us, self.proc_delay_spread_us)
        };
        if spread == 0 {
            return base;
        }
        // Cheap deterministic hash of the node id.
        let h = (node.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
        base + h % spread
    }

    /// One-way session latency between two nodes under the configured
    /// model. Unreachable pairs get the base latency (control-plane RRs
    /// may sit outside the measured IGP in synthetic setups).
    pub fn session_latency(&self, a: RouterId, b: RouterId) -> Time {
        match self.latency {
            LatencyModel::Fixed(l) => l,
            LatencyModel::IgpProportional { base, per_metric } => {
                let d = self.oracle.distance(a, b).unwrap_or(0) as Time;
                base + per_metric * d
            }
        }
    }

    /// Validates internal consistency; returns a human-readable list of
    /// problems (empty = OK).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.mode.has_abrr() {
            match &self.ap_map {
                None => problems.push("ABRR mode without an ApMap".into()),
                Some(map) => {
                    for part in map.partitions() {
                        if self.arrs_of(part.id).is_empty() {
                            problems.push(format!("{} has no ARRs", part.id));
                        }
                    }
                }
            }
            for (ap, arrs) in &self.arrs {
                if arrs.is_empty() {
                    problems.push(format!("{ap:?} lists no ARRs"));
                }
            }
        }
        if self.mode.has_tbrr() {
            if self.clusters.is_empty() {
                problems.push("TBRR mode without clusters".into());
            }
            for c in &self.clusters {
                if c.trrs.is_empty() {
                    problems.push(format!("cluster {} has no TRRs", c.id));
                }
            }
            for r in &self.routers {
                if !self.is_trr(*r) && self.trrs_of_client(*r).is_empty() {
                    problems.push(format!("router {r:?} is in no cluster"));
                }
            }
        }
        if let Some(map) = &self.ap_map {
            if map.len() > 1000 {
                problems.push("at most 1000 APs supported (peer-group id space)".into());
            }
        }
        if self.routers.is_empty() {
            problems.push("no routers".into());
        }
        problems
    }
}

/// Builds a ready-to-run simulator from a spec: creates one
/// [`BgpNode`] per AS node and the session set implied by the mode
/// (full mesh; ARR↔everyone; client↔its TRRs + TRR mesh; or the union
/// for transition).
pub fn build_sim(spec: Arc<NetworkSpec>) -> Sim<BgpNode> {
    let problems = spec.validate();
    assert!(problems.is_empty(), "invalid spec: {problems:?}");
    let mut sim: Sim<BgpNode> = Sim::new();
    for id in spec.all_nodes() {
        sim.add_node(id, BgpNode::new(id, spec.clone()));
    }
    let add = |sim: &mut Sim<BgpNode>, a: RouterId, b: RouterId| {
        if a != b && !sim.has_session(a, b) {
            sim.add_session(a, b, spec.session_latency(a, b));
        }
    };
    if spec.mode == Mode::FullMesh {
        let nodes = spec.all_nodes();
        for (i, a) in nodes.iter().enumerate() {
            for b in &nodes[i + 1..] {
                add(&mut sim, *a, *b);
            }
        }
    }
    if spec.mode.has_abrr() {
        // "Every ARR has an iBGP session with every other router" (§3.3).
        let nodes = spec.all_nodes();
        for arr in spec.all_arrs() {
            for n in &nodes {
                add(&mut sim, arr, *n);
            }
        }
    }
    if spec.mode.has_tbrr() {
        for c in &spec.clusters {
            for trr in &c.trrs {
                for client in &c.clients {
                    add(&mut sim, *trr, *client);
                }
            }
        }
        let trrs = spec.all_trrs();
        for (i, a) in trrs.iter().enumerate() {
            for b in &trrs[i + 1..] {
                add(&mut sim, *a, *b);
            }
        }
    }
    sim
}

/// Schedules a session bounce between `a` and `b` at time `t`: both
/// endpoints drop the peer's routes and re-synchronize their
/// Adj-RIB-Out, as real BGP speakers do when a session re-establishes.
pub fn schedule_session_reset(sim: &mut Sim<BgpNode>, t: Time, a: RouterId, b: RouterId) {
    sim.schedule_external(t, a, ExternalEvent::SessionReset { peer: b });
    sim.schedule_external(t, b, ExternalEvent::SessionReset { peer: a });
}

/// Convenience: the message/external types used by every engine sim.
pub type EngineSim = Sim<BgpNode>;
/// Message type alias.
pub type Msg = BgpMsg;
/// External event alias.
pub type External = ExternalEvent;

#[cfg(test)]
mod tests {
    use super::*;
    use igp::PopTopologyBuilder;

    fn r(i: u32) -> RouterId {
        RouterId(i)
    }

    fn topo4() -> Topology {
        PopTopologyBuilder::new(2, 2).build().topo
    }

    #[test]
    fn full_mesh_sessions() {
        let spec = Arc::new(NetworkSpec::full_mesh(&topo4(), Asn(65000)));
        let sim = build_sim(spec);
        // C(4,2) = 6 sessions.
        assert_eq!(sim.num_sessions(), 6);
    }

    #[test]
    fn abrr_sessions_arr_to_everyone() {
        let topo = topo4();
        let mut spec = NetworkSpec::full_mesh(&topo, Asn(65000));
        spec.mode = Mode::Abrr;
        spec.ap_map = Some(ApMap::uniform(2));
        spec.arrs.insert(ApId(0), vec![r(1)]);
        spec.arrs.insert(ApId(1), vec![r(2)]);
        let sim = build_sim(Arc::new(spec));
        // ARRs 1 and 2 each peer with all 3 other routers; the 1-2
        // session is shared: 3 + 3 - 1 = 5.
        assert_eq!(sim.num_sessions(), 5);
    }

    #[test]
    fn tbrr_sessions_cluster_plus_mesh() {
        let topo = topo4();
        let mut spec = NetworkSpec::full_mesh(&topo, Asn(65000));
        spec.mode = Mode::Tbrr { multipath: false };
        // Routers 1,2 are TRRs; 3,4 their clients.
        spec.routers = vec![r(3), r(4)];
        spec.clusters = vec![
            ClusterSpec {
                id: 1,
                trrs: vec![r(1)],
                clients: vec![r(3)],
            },
            ClusterSpec {
                id: 2,
                trrs: vec![r(2)],
                clients: vec![r(4)],
            },
        ];
        let sim = build_sim(Arc::new(spec));
        // client sessions: 1-3, 2-4; TRR mesh: 1-2.
        assert_eq!(sim.num_sessions(), 3);
    }

    #[test]
    fn spec_role_queries() {
        let topo = topo4();
        let mut spec = NetworkSpec::full_mesh(&topo, Asn(65000));
        spec.mode = Mode::Abrr;
        spec.ap_map = Some(ApMap::uniform(2));
        spec.arrs.insert(ApId(0), vec![r(1), r(2)]);
        spec.arrs.insert(ApId(1), vec![r(2)]);
        assert_eq!(spec.arr_aps_of(r(2)), vec![ApId(0), ApId(1)]);
        assert!(spec.is_arr(r(1)));
        assert!(!spec.is_arr(r(3)));
        assert_eq!(spec.all_arrs(), vec![r(1), r(2)]);
        let p: bgp_types::Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        assert!(spec.is_arr_for_prefix(r(1), &p)); // 10/8 in first half
    }

    #[test]
    fn validate_catches_missing_arrs() {
        let topo = topo4();
        let mut spec = NetworkSpec::full_mesh(&topo, Asn(65000));
        spec.mode = Mode::Abrr;
        spec.ap_map = Some(ApMap::uniform(2));
        spec.arrs.insert(ApId(0), vec![r(1)]);
        // AP1 has no ARRs.
        assert!(!spec.validate().is_empty());
    }

    #[test]
    fn validate_catches_orphan_client() {
        let topo = topo4();
        let mut spec = NetworkSpec::full_mesh(&topo, Asn(65000));
        spec.mode = Mode::Tbrr { multipath: false };
        spec.clusters = vec![ClusterSpec {
            id: 1,
            trrs: vec![r(1)],
            clients: vec![r(2)],
        }];
        // Routers 3, 4 are in no cluster.
        assert!(!spec.validate().is_empty());
    }

    #[test]
    fn latency_models() {
        let topo = topo4();
        let mut spec = NetworkSpec::full_mesh(&topo, Asn(65000));
        spec.latency = LatencyModel::Fixed(500);
        assert_eq!(spec.session_latency(r(1), r(2)), 500);
        spec.latency = LatencyModel::IgpProportional {
            base: 100,
            per_metric: 10,
        };
        let d = spec.oracle.distance(r(1), r(2)).unwrap() as Time;
        assert_eq!(spec.session_latency(r(1), r(2)), 100 + 10 * d);
    }
}
