//! iBGP messages and external (eBGP/operator) events.

use bgp_rib::PathSet;
use bgp_types::{ApId, Asn, Ipv4Prefix, PathAttributes};
use bgp_wire::{CodecConfig, Nlri, UpdateMessage};
use std::sync::Arc;

/// Which iBGP plane a message belongs to. During the §2.4 transition a
/// router runs both TBRR and ABRR concurrently — on real routers these
/// are distinct BGP sessions, so the receiver always knows which plane
/// an update arrived on. The tag models that session separation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Plane {
    /// Full-mesh iBGP.
    Mesh,
    /// The ABRR session set (client↔ARR).
    Abrr,
    /// The TBRR session set (client↔TRR, TRR↔TRR).
    Tbrr,
}

/// An iBGP update with *replace-set* semantics: `paths` is the complete
/// set of routes the sender now advertises to the receiver for
/// `prefix`; an empty set is a withdrawal.
///
/// This matches the paper's §3.4 contract ("should there be a change in
/// the set of best AS-level routes, the ARRs will convey all such
/// routes to the clients with each update") and the add-paths encoding:
/// each element carries its own path id. Single-path sessions (TBRR,
/// full-mesh) are the ≤1-element special case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BgpMsg {
    /// Destination prefix the update is about.
    pub prefix: Ipv4Prefix,
    /// The complete new path set; empty = withdraw. Shared so that one
    /// generated update fanned out to a whole peer group costs one
    /// allocation, not one per member (paper §3.3: generating an update
    /// is the expensive part, transmitting it is cheap — the code
    /// should have the same cost profile).
    pub paths: Arc<PathSet>,
    /// The session plane this update travels on.
    pub plane: Plane,
}

impl BgpMsg {
    /// A withdrawal for `prefix` on `plane`.
    pub fn withdraw(prefix: Ipv4Prefix, plane: Plane) -> Self {
        BgpMsg {
            prefix,
            paths: Arc::new(Vec::new()),
            plane,
        }
    }

    /// Whether this is a withdrawal.
    pub fn is_withdraw(&self) -> bool {
        self.paths.is_empty()
    }

    /// Size of this logical update on the wire, in bytes, for the
    /// paper's §4.2 bandwidth accounting.
    ///
    /// Paths sharing an attribute object are coalesced into one UPDATE
    /// (multiple add-paths NLRI); distinct attribute sets need separate
    /// UPDATEs, as on a real wire. A withdrawal is a single UPDATE with
    /// one withdrawn NLRI.
    pub fn wire_bytes(&self, add_paths: bool) -> usize {
        let cfg = if add_paths {
            CodecConfig::with_add_paths()
        } else {
            CodecConfig::plain()
        };
        if self.paths.is_empty() {
            let nlri = if add_paths {
                Nlri::with_path_id(self.prefix, bgp_types::PathId(0))
            } else {
                Nlri::plain(self.prefix)
            };
            let u = UpdateMessage::withdraw(vec![nlri]);
            return bgp_wire::HEADER_LEN + u.encoded_body_len(cfg);
        }
        // Group paths by identical attributes.
        let mut groups: Vec<(&Arc<PathAttributes>, Vec<Nlri>)> = Vec::new();
        for (id, attrs) in self.paths.iter() {
            let nlri = if add_paths {
                Nlri::with_path_id(self.prefix, *id)
            } else {
                Nlri::plain(self.prefix)
            };
            match groups.iter_mut().find(|(a, _)| *a == attrs) {
                Some((_, v)) => v.push(nlri),
                None => groups.push((attrs, vec![nlri])),
            }
        }
        groups
            .into_iter()
            .map(|(attrs, nlri)| {
                let u = UpdateMessage::announce((**attrs).clone(), nlri);
                bgp_wire::HEADER_LEN + u.encoded_body_len(cfg)
            })
            .sum()
    }
}

/// Events injected into a node from outside the simulated iBGP mesh.
#[derive(Clone, Debug)]
pub enum ExternalEvent {
    /// An eBGP announcement arrived from `peer_as` at session address
    /// `peer_addr`. The node applies next-hop-self before any iBGP
    /// propagation. LOCAL_PREF in `attrs` models ingress policy
    /// (customer > peer), applied at the border as the paper assumes
    /// ("policies are deployed at clients", §2.1).
    EbgpAnnounce {
        /// Destination prefix.
        prefix: Ipv4Prefix,
        /// Neighbouring AS.
        peer_as: Asn,
        /// eBGP session address (unique per session).
        peer_addr: u32,
        /// Received attributes.
        attrs: Arc<PathAttributes>,
    },
    /// The eBGP session `peer_addr` withdrew `prefix`.
    EbgpWithdraw {
        /// Destination prefix.
        prefix: Ipv4Prefix,
        /// eBGP session address.
        peer_addr: u32,
    },
    /// Originate (or stop originating) `prefix` locally.
    Local {
        /// The prefix.
        prefix: Ipv4Prefix,
        /// True to originate, false to stop.
        announce: bool,
    },
    /// Transition (§2.4): start accepting ABRR routes for this AP
    /// (while still accepting TBRR routes for APs not yet cut over).
    CutoverAp(ApId),
    /// Operator/controller action (§2.2: the AP→ARR assignment "can be
    /// changed when needed"): the ARRs responsible for `ap` become
    /// `arrs`. Broadcast to every node at the same instant so the AS
    /// switches consistently. The new ARRs should already hold ARR
    /// sessions — ABRR wires every ARR to every node, so reassigning
    /// among existing ARRs needs no new sessions.
    ReassignAp {
        /// The reassigned address partition.
        ap: ApId,
        /// Its new ARR set.
        arrs: Vec<bgp_types::RouterId>,
    },
    /// The iBGP session to `peer` bounced and has re-established: drop
    /// everything learned from the peer, re-run decisions, and re-send
    /// our Adj-RIB-Out toward it (BGP re-advertises the full table on
    /// session establishment). Schedule at *both* endpoints — see
    /// [`crate::spec::schedule_session_reset`].
    SessionReset {
        /// The peer whose session bounced.
        peer: bgp_types::RouterId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{AsPath, NextHop, PathId};

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn attrs(seed: u32) -> Arc<PathAttributes> {
        Arc::new(PathAttributes::ebgp(
            AsPath::sequence([Asn(seed)]),
            NextHop(seed),
        ))
    }

    #[test]
    fn withdraw_roundtrip_flag() {
        let m = BgpMsg::withdraw(pfx("10.0.0.0/8"), Plane::Abrr);
        assert!(m.is_withdraw());
        assert!(m.wire_bytes(true) >= bgp_wire::HEADER_LEN + 4);
    }

    #[test]
    fn multi_path_update_is_longer_but_sublinear_when_attrs_shared() {
        let shared = attrs(1);
        let one = BgpMsg {
            prefix: pfx("10.0.0.0/8"),
            paths: Arc::new(vec![(PathId(1), shared.clone())]),
            plane: Plane::Abrr,
        };
        let many_shared = BgpMsg {
            prefix: pfx("10.0.0.0/8"),
            paths: Arc::new((1..=10).map(|i| (PathId(i), shared.clone())).collect()),
            plane: Plane::Abrr,
        };
        let many_distinct = BgpMsg {
            prefix: pfx("10.0.0.0/8"),
            paths: Arc::new((1..=10).map(|i| (PathId(i), attrs(i))).collect()),
            plane: Plane::Abrr,
        };
        let b1 = one.wire_bytes(true);
        let bs = many_shared.wire_bytes(true);
        let bd = many_distinct.wire_bytes(true);
        assert!(b1 < bs);
        assert!(bs < bd, "shared attrs coalesce into one UPDATE");
        // Distinct attrs: ten separate UPDATEs, each with its own header.
        assert!(bd >= 10 * bgp_wire::HEADER_LEN);
    }

    #[test]
    fn plain_vs_add_paths_bytes() {
        let m = BgpMsg {
            prefix: pfx("10.0.0.0/8"),
            paths: Arc::new(vec![(PathId(1), attrs(1))]),
            plane: Plane::Abrr,
        };
        assert_eq!(m.wire_bytes(true), m.wire_bytes(false) + 4);
    }
}
