//! Migration coverage for the `UpdateCounters` move into `obs`.
//!
//! The type moved from `abrr::counters` to `obs::counters` with a
//! re-export shim left behind. Downstream code — the bench pipeline,
//! the `results/*.txt` emitters, external users of the crate API —
//! accesses it by the old paths and field names; this test locks all
//! of them so the shim cannot silently drift.

use abrr::UpdateCounters;

/// The old import paths and the new home must all name the same type.
/// (If the shim re-exported a *copy*, these coercions would not
/// compile.)
#[test]
fn old_paths_are_the_same_type() {
    fn takes_obs(c: obs::counters::UpdateCounters) -> obs::UpdateCounters {
        c
    }
    let via_crate_root: abrr::UpdateCounters = UpdateCounters::default();
    let via_old_module: abrr::counters::UpdateCounters = via_crate_root;
    let round_tripped = takes_obs(via_old_module);
    assert_eq!(round_tripped, UpdateCounters::default());
}

/// Every pre-migration field keeps its name, is public, and keeps u64
/// semantics; `merge` keeps summing all of them. The bench emitters
/// format these fields directly into `results/*.txt`, so a renamed or
/// dropped field would change published output.
#[test]
fn field_names_and_merge_survive_migration() {
    let mut c = UpdateCounters {
        received: 1,
        generated: 2,
        transmitted: 3,
        bytes_transmitted: 4,
        loop_prevented: 5,
        ebgp_events: 6,
        ebgp_exported: 7,
    };
    c.merge(&UpdateCounters {
        received: 10,
        generated: 20,
        transmitted: 30,
        bytes_transmitted: 40,
        loop_prevented: 50,
        ebgp_events: 60,
        ebgp_exported: 70,
    });
    assert_eq!(c.received, 11);
    assert_eq!(c.generated, 22);
    assert_eq!(c.transmitted, 33);
    assert_eq!(c.bytes_transmitted, 44);
    assert_eq!(c.loop_prevented, 55);
    assert_eq!(c.ebgp_events, 66);
    assert_eq!(c.ebgp_exported, 77);
}

/// The derives downstream code relies on (Copy for counter windows,
/// Default for baselines, Eq for golden comparisons) survived the move.
#[test]
fn derives_survive_migration() {
    let a = UpdateCounters {
        received: 9,
        ..UpdateCounters::default()
    };
    let b = a; // Copy
    assert_eq!(a, b); // Eq (and a still usable after the copy)
    assert!(format!("{a:?}").contains("received: 9")); // Debug
}
