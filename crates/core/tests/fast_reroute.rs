//! The §3.2/§3.4 extension: clients keeping backup routes from the
//! ARR's best-AS-level sets get instant local repair when their primary
//! exit dies — one of the multi-path dividends the paper argues ABRR
//! buys over single-path TBRR ("multiple paths that may be exploited
//! for traffic engineering and fast re-route").

use abrr::prelude::*;
use std::sync::Arc;

fn pfx(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

fn feed(prefix: Ipv4Prefix, peer_as: u32, peer_addr: u32) -> ExternalEvent {
    ExternalEvent::EbgpAnnounce {
        prefix,
        peer_as: Asn(peer_as),
        peer_addr,
        attrs: Arc::new(PathAttributes::ebgp(
            AsPath::sequence([Asn(peer_as)]),
            NextHop(peer_addr),
        )),
    }
}

/// 2 PoPs × 3 routers; two equal AS-level exits in different PoPs.
fn net(keep_backups: bool) -> (Arc<NetworkSpec>, Sim<BgpNode>, Vec<RouterId>) {
    let view = igp::PopTopologyBuilder::new(2, 3).build();
    let routers = view.routers();
    let mut spec = NetworkSpec::full_mesh(&view.topo, Asn(65000));
    spec.mode = Mode::Abrr;
    spec.ap_map = Some(ApMap::uniform(1));
    spec.arrs.insert(ApId(0), vec![routers[0], routers[3]]);
    spec.clients_keep_backups = keep_backups;
    let spec = Arc::new(spec);
    let sim = build_sim(spec.clone());
    (spec, sim, routers)
}

#[test]
fn backup_route_present_when_enabled() {
    let (_spec, mut sim, routers) = net(true);
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(0, routers[1], feed(p, 7018, 9001)); // exit PoP0
    sim.schedule_external(0, routers[4], feed(p, 7018, 9002)); // exit PoP1
    assert!(sim.run_to_quiescence().quiesced);
    // A non-exit client holds a primary and a distinct backup.
    let observer = routers[5];
    let primary = sim
        .node(observer)
        .selected(&p)
        .expect("primary")
        .exit_router();
    let backup = sim
        .node(observer)
        .backup_route(&p)
        .expect("backup pre-installed");
    assert_ne!(backup.exit_router(), primary);
    // Hot potato: observer is in PoP1, so primary is the PoP1 exit and
    // the backup is the remote one.
    assert_eq!(primary, routers[4]);
    assert_eq!(backup.exit_router(), routers[1]);
}

#[test]
fn no_backup_without_the_option() {
    let (_spec, mut sim, routers) = net(false);
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(0, routers[1], feed(p, 7018, 9001));
    sim.schedule_external(0, routers[4], feed(p, 7018, 9002));
    assert!(sim.run_to_quiescence().quiesced);
    // The reduced store holds only the best: no backup to fall back on
    // locally (repair then needs the ARRs' next update).
    assert!(sim.node(routers[5]).backup_route(&p).is_none());
}

#[test]
fn backup_survives_primary_withdrawal_and_matches_reconvergence() {
    let (_spec, mut sim, routers) = net(true);
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(0, routers[1], feed(p, 7018, 9001));
    sim.schedule_external(0, routers[4], feed(p, 7018, 9002));
    assert!(sim.run_to_quiescence().quiesced);
    let observer = routers[5];
    let backup = sim.node(observer).backup_route(&p).unwrap().exit_router();
    // Primary exit withdraws: the pre-installed backup is exactly what
    // the network reconverges to.
    sim.schedule_external(
        sim.now() + 1,
        routers[4],
        ExternalEvent::EbgpWithdraw {
            prefix: p,
            peer_addr: 9002,
        },
    );
    assert!(sim.run_to_quiescence().quiesced);
    assert_eq!(
        sim.node(observer).selected(&p).unwrap().exit_router(),
        backup,
        "post-reconvergence selection equals the pre-installed backup"
    );
}

#[test]
fn no_backup_for_unknown_prefix() {
    // No selection means nothing to back up: backup_route must not
    // invent a route for a prefix the router has never heard of.
    let (_spec, mut sim, routers) = net(true);
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(0, routers[1], feed(p, 7018, 9001));
    assert!(sim.run_to_quiescence().quiesced);
    assert!(sim
        .node(routers[5])
        .backup_route(&pfx("172.16.0.0/12"))
        .is_none());
}

#[test]
fn no_backup_when_single_exit() {
    // One exit only: every stored path shares the primary's exit, so
    // there is no *distinct* backup even with the extension on.
    let (_spec, mut sim, routers) = net(true);
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(0, routers[1], feed(p, 7018, 9001));
    assert!(sim.run_to_quiescence().quiesced);
    let observer = routers[5];
    assert_eq!(
        sim.node(observer).selected(&p).unwrap().exit_router(),
        routers[1]
    );
    assert!(sim.node(observer).backup_route(&p).is_none());
}

#[test]
fn backups_do_not_change_selections() {
    // Keeping backups is pure extra state: primary selections must be
    // identical with and without it.
    let run = |keep: bool| {
        let (_s, mut sim, routers) = net(keep);
        let p = pfx("10.0.0.0/8");
        sim.schedule_external(0, routers[1], feed(p, 7018, 9001));
        sim.schedule_external(0, routers[4], feed(p, 7018, 9002));
        assert!(sim.run_to_quiescence().quiesced);
        routers
            .iter()
            .map(|r| sim.node(*r).selected(&p).map(|s| s.exit_router()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn backup_rib_cost_is_bounded() {
    // The extension stores at most one extra route per (ARR, prefix).
    let count = |keep: bool| {
        let (_s, mut sim, routers) = net(keep);
        let p = pfx("10.0.0.0/8");
        sim.schedule_external(0, routers[1], feed(p, 7018, 9001));
        sim.schedule_external(0, routers[4], feed(p, 7018, 9002));
        assert!(sim.run_to_quiescence().quiesced);
        sim.node(routers[5]).client_in_entries()
    };
    let without = count(false);
    let with = count(true);
    assert!(with > without);
    assert!(with <= 2 * without, "at most double: {with} vs {without}");
}
