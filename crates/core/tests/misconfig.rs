//! §2.3.2: loop prevention under inconsistent configuration. Three
//! routers each believe *they* are the sole ARR and the others are
//! clients. The single-bit reflected marker must stop reflected updates
//! from being re-reflected.

use abrr::prelude::*;
use netsim::Sim;
use std::sync::Arc;

fn pfx(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

/// Builds the 3-router mutual-misbelief network: each node gets its own
/// spec claiming itself as the only ARR.
fn misconfigured_trio_with(prevention: AbrrLoopPrevention) -> Sim<BgpNode> {
    let mut topo = igp::Topology::new();
    let (a, b, c) = (RouterId(1), RouterId(2), RouterId(3));
    topo.add_link(a, b, 1);
    topo.add_link(b, c, 1);
    topo.add_link(a, c, 1);
    let mut sim: Sim<BgpNode> = Sim::new();
    for me in [a, b, c] {
        let mut spec = NetworkSpec::full_mesh(&topo, Asn(65000));
        spec.mode = Mode::Abrr;
        spec.ap_map = Some(ApMap::uniform(1));
        spec.arrs.insert(ApId(0), vec![me]); // "I am the ARR"
        spec.abrr_loop_prevention = prevention;
        sim.add_node(me, BgpNode::new(me, Arc::new(spec)));
    }
    sim.add_session(a, b, 1_000);
    sim.add_session(b, c, 1_000);
    sim.add_session(a, c, 1_000);
    sim
}

#[test]
fn reflected_marker_stops_re_reflection() {
    let mut sim = misconfigured_trio_with(AbrrLoopPrevention::ReflectedBit);
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(
        0,
        RouterId(1),
        ExternalEvent::EbgpAnnounce {
            prefix: p,
            peer_as: Asn(7018),
            peer_addr: 9001,
            attrs: Arc::new(PathAttributes::ebgp(
                AsPath::sequence([Asn(7018)]),
                NextHop(9001),
            )),
        },
    );
    let out = sim.run(RunLimits {
        max_events: 100_000,
        max_time: u64::MAX,
    });
    assert!(out.quiesced, "must not loop");
    // Node 1 reflected to 2 and 3 (believing them clients); both tried
    // to re-reflect and were stopped by the marker.
    let prevented: u64 = [2u32, 3]
        .iter()
        .map(|r| sim.node(RouterId(*r)).counters().loop_prevented)
        .sum();
    assert!(
        prevented >= 2,
        "both receivers must have refused to re-reflect (got {prevented})"
    );
    // Under full mutual misbelief the receivers treat node 1's update
    // as a *client* advertisement carrying the reflected marker — and
    // refuse it. The route is (safely) not installed; no update ever
    // circulates twice. Fail-safe beats fail-looping.
    for r in [2u32, 3] {
        assert!(sim.node(RouterId(r)).selected(&p).is_none());
        assert_eq!(sim.node(RouterId(r)).counters().transmitted, 0);
    }
}

#[test]
fn without_marker_more_messages_flow_but_replace_set_converges() {
    // The ablation: without the marker a single update *is* re-reflected
    // (the paper notes a single looping update dies as "old news"; the
    // danger is multiple updates chasing each other). Replace-set
    // semantics deduplicate, so this small case still converges — but
    // strictly more messages flow than with the marker.
    let run = |prevention: AbrrLoopPrevention| {
        let mut sim = misconfigured_trio_with(prevention);
        let p = pfx("10.0.0.0/8");
        sim.schedule_external(
            0,
            RouterId(1),
            ExternalEvent::EbgpAnnounce {
                prefix: p,
                peer_as: Asn(7018),
                peer_addr: 9001,
                attrs: Arc::new(PathAttributes::ebgp(
                    AsPath::sequence([Asn(7018)]),
                    NextHop(9001),
                )),
            },
        );
        let out = sim.run(RunLimits {
            max_events: 100_000,
            max_time: u64::MAX,
        });
        assert!(out.quiesced);
        let total: u64 = [1u32, 2, 3]
            .iter()
            .map(|r| sim.node(RouterId(*r)).counters().transmitted)
            .sum();
        total
    };
    let with_marker = run(AbrrLoopPrevention::ReflectedBit);
    let with_cluster_list = run(AbrrLoopPrevention::ClusterList);
    let without = run(AbrrLoopPrevention::None);
    assert!(
        without > with_marker,
        "marker must cut message count: {without} !> {with_marker}"
    );
    // The cluster list also prevents indefinite looping, but lets the
    // update circulate further than the marker (paper: it is overkill —
    // and, as shown here, also weaker at containment).
    assert!(
        with_cluster_list >= with_marker,
        "cluster list cannot beat the single-bit marker: {with_cluster_list} < {with_marker}"
    );
}

#[test]
fn cluster_list_prevention_converges_and_fires() {
    // With CLUSTER_LIST prevention, the mistaken reflection chain
    // circulates until an update returns to a stamping ARR, which then
    // recognizes its own id.
    let mut sim = misconfigured_trio_with(AbrrLoopPrevention::ClusterList);
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(
        0,
        RouterId(1),
        ExternalEvent::EbgpAnnounce {
            prefix: p,
            peer_as: Asn(7018),
            peer_addr: 9001,
            attrs: Arc::new(PathAttributes::ebgp(
                AsPath::sequence([Asn(7018)]),
                NextHop(9001),
            )),
        },
    );
    let out = sim.run(RunLimits {
        max_events: 100_000,
        max_time: u64::MAX,
    });
    assert!(
        out.quiesced,
        "cluster-list prevention must not loop forever"
    );
    // The list is being stamped: node 3 received node 1's route via the
    // mistaken reflection at node 2, carrying node 2's cluster id.
    let via_2 = sim.node(RouterId(3)).arr_paths_from(RouterId(2), &p);
    assert_eq!(via_2.len(), 1);
    assert!(
        via_2[0].1.cluster_list.iter().any(|c| c.0 == 2),
        "reflected route must carry the reflector's cluster id: {:?}",
        via_2[0].1.cluster_list
    );
    // In this gadget the replace-set path-id deduplication contains the
    // chain before any stamper sees its own id again — the prevention
    // check exists for the configurations where it does come back.
}

#[test]
fn correctly_configured_redundant_arrs_need_no_coordination() {
    // Paper §1: "Robustness is achieved by simply deploying multiple
    // ARRs for each address range: no coordination between redundant
    // ARRs is required." Two ARRs for one AP; after convergence both
    // hold identical managed RIBs, and clients store one best per ARR.
    let view = igp::PopTopologyBuilder::new(2, 2).build();
    let mut spec = NetworkSpec::full_mesh(&view.topo, Asn(65000));
    spec.mode = Mode::Abrr;
    spec.ap_map = Some(ApMap::uniform(1));
    spec.arrs.insert(ApId(0), vec![RouterId(1), RouterId(3)]);
    let spec = Arc::new(spec);
    let mut sim = build_sim(spec.clone());
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(
        0,
        RouterId(2),
        ExternalEvent::EbgpAnnounce {
            prefix: p,
            peer_as: Asn(7018),
            peer_addr: 9001,
            attrs: Arc::new(PathAttributes::ebgp(
                AsPath::sequence([Asn(7018)]),
                NextHop(9001),
            )),
        },
    );
    assert!(sim.run_to_quiescence().quiesced);
    // Both ARRs hold the same managed set.
    assert_eq!(sim.node(RouterId(1)).arr_in_entries(), 1);
    assert_eq!(sim.node(RouterId(3)).arr_in_entries(), 1);
    assert_eq!(
        sim.node(RouterId(1)).arr_paths_from(RouterId(2), &p),
        sim.node(RouterId(3)).arr_paths_from(RouterId(2), &p)
    );
    // A plain client keeps one best per redundant ARR (Appendix A:
    // the #ARRs/#APs redundancy factor).
    let client = RouterId(4);
    assert_eq!(sim.node(client).client_paths_from(RouterId(1), &p).len(), 1);
    assert_eq!(sim.node(client).client_paths_from(RouterId(3), &p).len(), 1);
    assert_eq!(sim.node(client).client_in_entries(), 2);
}

#[test]
fn arr_failure_leaves_service_via_redundant_arr() {
    // Kill one ARR's sessions mid-run: routes keep flowing through the
    // other ARR; reconvergence drops the dead ARR's contributions.
    let view = igp::PopTopologyBuilder::new(2, 2).build();
    let mut spec = NetworkSpec::full_mesh(&view.topo, Asn(65000));
    spec.mode = Mode::Abrr;
    spec.ap_map = Some(ApMap::uniform(1));
    spec.arrs.insert(ApId(0), vec![RouterId(1), RouterId(3)]);
    let spec = Arc::new(spec);
    let mut sim = build_sim(spec.clone());
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(
        0,
        RouterId(2),
        ExternalEvent::EbgpAnnounce {
            prefix: p,
            peer_as: Asn(7018),
            peer_addr: 9001,
            attrs: Arc::new(PathAttributes::ebgp(
                AsPath::sequence([Asn(7018)]),
                NextHop(9001),
            )),
        },
    );
    assert!(sim.run_to_quiescence().quiesced);
    // Sever ARR 1 from everyone.
    for r in [2u32, 3, 4] {
        sim.remove_session(RouterId(1), RouterId(r));
    }
    // A new exit appears at router 4; it can only travel via ARR 3.
    sim.schedule_external(
        sim.now() + 1,
        RouterId(4),
        ExternalEvent::EbgpAnnounce {
            prefix: p,
            peer_as: Asn(7018),
            peer_addr: 9002,
            attrs: Arc::new(PathAttributes::ebgp(
                AsPath::sequence([Asn(7018)]),
                NextHop(9002),
            )),
        },
    );
    assert!(sim.run_to_quiescence().quiesced);
    // Router 2 learned the new exit from ARR 3 (its best AS-level set
    // now has two routes; its own stays preferred as eBGP, but the set
    // from ARR 3 contains router 4's route).
    let from_arr3 = sim.node(RouterId(2)).client_paths_from(RouterId(3), &p);
    assert_eq!(from_arr3.len(), 1, "reduced best from the surviving ARR");
}
