//! §2.4: incremental TBRR→ABRR transition — routers run both protocols,
//! initially accept TBRR routes, and cut over one AP at a time.

use abrr::prelude::*;
use std::sync::Arc;

fn pfx(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

fn feed(prefix: Ipv4Prefix, peer_as: u32, peer_addr: u32) -> ExternalEvent {
    ExternalEvent::EbgpAnnounce {
        prefix,
        peer_as: Asn(peer_as),
        peer_addr,
        attrs: Arc::new(PathAttributes::ebgp(
            AsPath::sequence([Asn(peer_as)]),
            NextHop(peer_addr),
        )),
    }
}

/// 2 PoPs × 3 routers. TBRR: one cluster per PoP, TRR = first router of
/// the PoP. ABRR: 2 APs, ARRs = the two TRR routers (reused hardware).
fn transition_net() -> (Arc<NetworkSpec>, Vec<RouterId>) {
    let view = igp::PopTopologyBuilder::new(2, 3).build();
    let routers = view.routers();
    let mut spec = NetworkSpec::full_mesh(&view.topo, Asn(65000));
    spec.mode = Mode::Transition;
    spec.routers = routers.clone();
    spec.ap_map = Some(ApMap::uniform(2));
    spec.arrs.insert(ApId(0), vec![routers[0]]);
    spec.arrs.insert(ApId(1), vec![routers[3]]);
    spec.clusters = vec![
        ClusterSpec {
            id: 1,
            trrs: vec![routers[0]],
            clients: routers[1..3].to_vec(),
        },
        ClusterSpec {
            id: 2,
            trrs: vec![routers[3]],
            clients: routers[4..6].to_vec(),
        },
    ];
    (Arc::new(spec), routers)
}

#[test]
fn pre_cutover_uses_tbrr_routes() {
    let (spec, routers) = transition_net();
    let mut sim = build_sim(spec.clone());
    let p = pfx("10.0.0.0/8"); // AP0
    sim.schedule_external(0, routers[1], feed(p, 7018, 9001));
    assert!(sim.run_to_quiescence().quiesced);
    // Client in the other cluster gets the route (via TBRR) even though
    // no AP has been cut over.
    let victim = routers[4];
    let sel = sim.node(victim).selected(&p).expect("route via TBRR");
    assert_eq!(sel.exit_router(), routers[1]);
    // It must be the TRR-learned copy: cluster list non-empty.
    assert!(!sel.attrs.cluster_list.is_empty());
}

#[test]
fn cutover_switches_ap_to_abrr_routes() {
    let (spec, routers) = transition_net();
    let mut sim = build_sim(spec.clone());
    let p0 = pfx("10.0.0.0/8"); // AP0
    let p1 = pfx("192.168.0.0/16"); // AP1
    sim.schedule_external(0, routers[1], feed(p0, 7018, 9001));
    sim.schedule_external(0, routers[4], feed(p1, 3356, 9002));
    assert!(sim.run_to_quiescence().quiesced);

    // Cut AP0 over on every node.
    let t = sim.now() + 1;
    for r in spec.all_nodes() {
        sim.schedule_external(t, r, ExternalEvent::CutoverAp(ApId(0)));
    }
    assert!(sim.run_to_quiescence().quiesced);

    let victim = routers[4];
    // AP0 prefix now learned via ABRR: reflected marker present, no
    // cluster list.
    let sel0 = sim.node(victim).selected(&p0).expect("route");
    assert!(sel0.attrs.is_abrr_reflected(), "AP0 must be ABRR-learned");
    assert_eq!(sel0.exit_router(), routers[1]);
    // AP1 prefix still via TBRR.
    let other = routers[1];
    let sel1 = sim.node(other).selected(&p1).expect("route");
    assert!(
        !sel1.attrs.is_abrr_reflected(),
        "AP1 not yet cut over: must still be TBRR-learned"
    );

    // Cut AP1 over too; now everything is ABRR.
    let t = sim.now() + 1;
    for r in spec.all_nodes() {
        sim.schedule_external(t, r, ExternalEvent::CutoverAp(ApId(1)));
    }
    assert!(sim.run_to_quiescence().quiesced);
    let sel1 = sim.node(other).selected(&p1).expect("route");
    assert!(sel1.attrs.is_abrr_reflected());
    assert_eq!(sel1.exit_router(), routers[4]);
}

#[test]
fn spanning_prefix_needs_every_covering_ap() {
    // §2.4 accept-set rule: a prefix covered by several APs switches to
    // ABRR routes only once *all* of them are in the accept set. With
    // ApMap::uniform(2), 0.0.0.0/0 overlaps both partitions.
    let (spec, routers) = transition_net();
    let mut sim = build_sim(spec.clone());
    let p = pfx("0.0.0.0/0");
    sim.schedule_external(0, routers[1], feed(p, 7018, 9001));
    assert!(sim.run_to_quiescence().quiesced);
    let victim = routers[4];

    // Cut over AP0 only: the accept set {AP0} does not cover the
    // spanning prefix, so it must stay on its TBRR-learned copy.
    let t = sim.now() + 1;
    for r in spec.all_nodes() {
        sim.schedule_external(t, r, ExternalEvent::CutoverAp(ApId(0)));
    }
    assert!(sim.run_to_quiescence().quiesced);
    let sel = sim.node(victim).selected(&p).expect("route");
    assert!(
        !sel.attrs.is_abrr_reflected(),
        "spanning prefix flipped with only one of its APs cut over"
    );

    // Cut over AP1 too: now every covering AP is accepted.
    let t = sim.now() + 1;
    for r in spec.all_nodes() {
        sim.schedule_external(t, r, ExternalEvent::CutoverAp(ApId(1)));
    }
    assert!(sim.run_to_quiescence().quiesced);
    let sel = sim.node(victim).selected(&p).expect("route");
    assert!(sel.attrs.is_abrr_reflected());
    assert_eq!(sel.exit_router(), routers[1]);
}

#[test]
fn repeated_cutover_is_a_noop() {
    // The accept set is a set: re-announcing an already-cut-over AP must
    // not recompute anything or generate a single update.
    let (spec, routers) = transition_net();
    let mut sim = build_sim(spec.clone());
    let p0 = pfx("10.0.0.0/8");
    sim.schedule_external(0, routers[1], feed(p0, 7018, 9001));
    sim.run_to_quiescence();
    let t = sim.now() + 1;
    for r in spec.all_nodes() {
        sim.schedule_external(t, r, ExternalEvent::CutoverAp(ApId(0)));
    }
    assert!(sim.run_to_quiescence().quiesced);

    let generated_before: u64 = spec
        .all_nodes()
        .iter()
        .map(|r| sim.node(*r).counters().generated)
        .sum();
    let selections_before: Vec<_> = routers
        .iter()
        .map(|r| sim.node(*r).selected(&p0).map(|s| s.exit_router()))
        .collect();

    let t = sim.now() + 1;
    for r in spec.all_nodes() {
        sim.schedule_external(t, r, ExternalEvent::CutoverAp(ApId(0)));
    }
    assert!(sim.run_to_quiescence().quiesced);

    let generated_after: u64 = spec
        .all_nodes()
        .iter()
        .map(|r| sim.node(*r).counters().generated)
        .sum();
    let selections_after: Vec<_> = routers
        .iter()
        .map(|r| sim.node(*r).selected(&p0).map(|s| s.exit_router()))
        .collect();
    assert_eq!(
        generated_before, generated_after,
        "duplicate cutover generated updates"
    );
    assert_eq!(selections_before, selections_after);
}

#[test]
fn no_blackholes_at_any_stage() {
    let (spec, routers) = transition_net();
    let mut sim = build_sim(spec.clone());
    let prefixes: Vec<Ipv4Prefix> = vec![pfx("10.0.0.0/8"), pfx("192.168.0.0/16")];
    sim.schedule_external(0, routers[1], feed(prefixes[0], 7018, 9001));
    sim.schedule_external(0, routers[4], feed(prefixes[1], 3356, 9002));
    assert!(sim.run_to_quiescence().quiesced);

    let assert_all_routed = |sim: &Sim<BgpNode>, stage: &str| {
        for p in &prefixes {
            for out in audit::audit_forwarding(sim, &spec, p).values() {
                assert!(
                    matches!(out, audit::ForwardingOutcome::Delivered { .. }),
                    "{stage}: {out:?}"
                );
            }
        }
    };
    assert_all_routed(&sim, "before cutover");
    for ap in [ApId(0), ApId(1)] {
        let t = sim.now() + 1;
        for r in spec.all_nodes() {
            sim.schedule_external(t, r, ExternalEvent::CutoverAp(ap));
        }
        assert!(sim.run_to_quiescence().quiesced);
        assert_all_routed(&sim, &format!("after cutover of {ap:?}"));
    }
}

#[test]
fn post_transition_matches_pure_abrr() {
    let (spec, routers) = transition_net();
    let mut sim = build_sim(spec.clone());
    let p0 = pfx("10.0.0.0/8");
    let p1 = pfx("192.168.0.0/16");
    sim.schedule_external(0, routers[1], feed(p0, 7018, 9001));
    sim.schedule_external(0, routers[4], feed(p1, 3356, 9002));
    sim.run_to_quiescence();
    for ap in [ApId(0), ApId(1)] {
        let t = sim.now() + 1;
        for r in spec.all_nodes() {
            sim.schedule_external(t, r, ExternalEvent::CutoverAp(ap));
        }
        sim.run_to_quiescence();
    }

    // Pure ABRR reference.
    let mut pure = (*spec).clone();
    pure.mode = Mode::Abrr;
    pure.clusters.clear();
    let pure = Arc::new(pure);
    let mut ref_sim = build_sim(pure);
    ref_sim.schedule_external(0, routers[1], feed(p0, 7018, 9001));
    ref_sim.schedule_external(0, routers[4], feed(p1, 3356, 9002));
    assert!(ref_sim.run_to_quiescence().quiesced);

    for r in &routers {
        for p in [&p0, &p1] {
            assert_eq!(
                sim.node(*r).selected(p).map(|s| s.exit_router()),
                ref_sim.node(*r).selected(p).map(|s| s.exit_router()),
                "router {r:?} prefix {p}"
            );
        }
    }
}
