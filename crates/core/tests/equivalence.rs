//! The paper's central semantic claim (§2.2): ABRR emulates full-mesh
//! iBGP. We verify it empirically on randomized networks: same
//! topology, same eBGP feeds — every router's steady-state selection
//! must match full-mesh exactly, and the data plane must be loop-free
//! and exit-efficient.

use abrr::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Generates a random PoP network, role assignment and feed set.
struct RandomNet {
    spec_base: NetworkSpec,
    routers: Vec<RouterId>,
    rrs: Vec<RouterId>,
    n_aps: usize,
    feeds: Vec<(RouterId, ExternalEvent)>,
    prefixes: Vec<Ipv4Prefix>,
}

fn random_net(seed: u64) -> RandomNet {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_pops = rng.gen_range(2..=4);
    let per_pop = rng.gen_range(2..=4);
    // Sometimes violate the intra<inter metric rule — ABRR must still
    // match full-mesh (placement/metric freedom, §2.3.3).
    let (intra, inter) = if rng.gen_bool(0.5) {
        (1, 100)
    } else {
        (60, 10)
    };
    let view = igp::PopTopologyBuilder::new(n_pops, per_pop)
        .intra_metric(intra)
        .inter_metric(inter)
        .build();
    let routers = view.routers();
    let n_rrs = rng.gen_range(1..=3.min(routers.len()));
    let mut rrs: Vec<RouterId> = Vec::new();
    while rrs.len() < n_rrs {
        let cand = routers[rng.gen_range(0..routers.len())];
        if !rrs.contains(&cand) {
            rrs.push(cand);
        }
    }
    rrs.sort();
    let n_aps = rng.gen_range(1..=n_rrs);

    // Prefixes across the whole space; several exits per prefix with
    // random AS paths, MEDs, local prefs.
    let n_prefixes = rng.gen_range(3..=8);
    let mut prefixes = Vec::new();
    let mut feeds = Vec::new();
    for i in 0..n_prefixes {
        let addr = (rng.gen::<u32>() & 0xFFFF_0000).wrapping_add((i as u32) << 16);
        let p = Ipv4Prefix::new(addr, 16);
        prefixes.push(p);
        let n_exits = rng.gen_range(1..=3);
        for e in 0..n_exits {
            let exit = routers[rng.gen_range(0..routers.len())];
            let peer_as = 100 + rng.gen_range(0..3) as u32;
            let path_len = rng.gen_range(1..=3);
            let mut asns = vec![Asn(peer_as)];
            for _ in 1..path_len {
                asns.push(Asn(1000 + rng.gen_range(0..5) as u32));
            }
            let mut attrs = PathAttributes::ebgp(AsPath::sequence(asns), NextHop(0));
            if rng.gen_bool(0.5) {
                attrs.med = Some(bgp_types::Med(rng.gen_range(0..3)));
            }
            if rng.gen_bool(0.3) {
                attrs.local_pref = Some(bgp_types::LocalPref(if rng.gen_bool(0.5) {
                    110
                } else {
                    100
                }));
            }
            feeds.push((
                exit,
                ExternalEvent::EbgpAnnounce {
                    prefix: p,
                    peer_as: Asn(peer_as),
                    peer_addr: 9000 + (i * 10 + e) as u32,
                    attrs: Arc::new(attrs),
                },
            ));
        }
    }
    let spec_base = NetworkSpec::full_mesh(&view.topo, Asn(65000));
    RandomNet {
        spec_base,
        routers,
        rrs,
        n_aps,
        feeds,
        prefixes,
    }
}

fn run_mode(net: &RandomNet, mode: Mode) -> Sim<BgpNode> {
    let mut spec = net.spec_base.clone();
    spec.mode = mode.clone();
    spec.routers = net.routers.clone();
    if mode.has_abrr() {
        spec.ap_map = Some(ApMap::uniform(net.n_aps));
        for (i, part) in ApMap::uniform(net.n_aps).partitions().iter().enumerate() {
            // Round-robin ARRs over APs; every AP gets 1-2 ARRs.
            let mut arrs = vec![net.rrs[i % net.rrs.len()]];
            if net.rrs.len() > 1 {
                arrs.push(net.rrs[(i + 1) % net.rrs.len()]);
            }
            arrs.sort();
            arrs.dedup();
            spec.arrs.insert(part.id, arrs);
        }
    }
    let spec = Arc::new(spec);
    let mut sim = build_sim(spec);
    for (r, ev) in &net.feeds {
        sim.schedule_external(0, *r, ev.clone());
    }
    let out = sim.run(RunLimits {
        max_events: 2_000_000,
        max_time: u64::MAX,
    });
    assert!(out.quiesced, "{mode:?} did not converge");
    sim
}

#[test]
fn abrr_matches_full_mesh_on_random_networks() {
    for seed in 0..25u64 {
        let net = random_net(seed);
        let mesh = run_mode(&net, Mode::FullMesh);
        let ab = run_mode(&net, Mode::Abrr);
        for r in &net.routers {
            for p in &net.prefixes {
                let m = mesh.node(*r).selected(p);
                let a = ab.node(*r).selected(p);
                match (m, a) {
                    (None, None) => {}
                    (Some(ms), Some(as_)) => {
                        assert_eq!(
                            ms.exit_router(),
                            as_.exit_router(),
                            "seed {seed}: router {r:?} prefix {p} exit mismatch"
                        );
                        assert_eq!(
                            ms.attrs.as_path, as_.attrs.as_path,
                            "seed {seed}: router {r:?} prefix {p} path mismatch"
                        );
                    }
                    (m, a) => panic!("seed {seed}: router {r:?} prefix {p}: mesh={m:?} abrr={a:?}"),
                }
            }
        }
    }
}

#[test]
fn abrr_is_loop_free_on_random_networks() {
    for seed in 0..25u64 {
        let net = random_net(seed);
        let mut spec = net.spec_base.clone();
        spec.mode = Mode::Abrr;
        let ab = run_mode(&net, Mode::Abrr);
        spec.routers = net.routers.clone();
        assert_eq!(
            audit::count_loops(&ab, &spec, &net.prefixes),
            0,
            "seed {seed}: forwarding loop under ABRR"
        );
    }
}

#[test]
fn tbrr_multipath_converges_and_is_loop_free_on_engineered_metrics() {
    // With paper-style engineered metrics (intra < inter) multi-path
    // TBRR should behave; seeds with inverted metrics are skipped by
    // construction here.
    for seed in [0u64, 3, 7, 11] {
        let net = random_net(seed);
        let mut spec = net.spec_base.clone();
        spec.mode = Mode::Tbrr { multipath: true };
        spec.routers = net.routers.clone();
        spec.clusters = vec![ClusterSpec {
            id: 1,
            trrs: net.rrs.clone(),
            clients: net
                .routers
                .iter()
                .copied()
                .filter(|r| !net.rrs.contains(r))
                .collect(),
        }];
        let spec = Arc::new(spec);
        let mut sim = build_sim(spec.clone());
        for (r, ev) in &net.feeds {
            sim.schedule_external(0, *r, ev.clone());
        }
        let out = sim.run(RunLimits {
            max_events: 2_000_000,
            max_time: u64::MAX,
        });
        assert!(out.quiesced, "seed {seed}");
        assert_eq!(
            audit::count_loops(&sim, &spec, &net.prefixes),
            0,
            "seed {seed}"
        );
    }
}

#[test]
fn abrr_matches_full_mesh_after_withdrawals_and_flaps() {
    // §2.2's steady-state argument covers withdrawal dynamics too: after
    // an arbitrary mix of announcements, withdrawals and re-announcements,
    // the converged ABRR state must still equal full-mesh.
    for seed in 0..15u64 {
        let net = random_net(seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E3779B9) ^ 0x71D);
        // Build a timed script: initial feeds at t=0, then a shuffle of
        // withdrawals and re-announcements.
        let mut script: Vec<(u64, RouterId, ExternalEvent)> = net
            .feeds
            .iter()
            .map(|(r, ev)| (0u64, *r, ev.clone()))
            .collect();
        let mut t = 10_000u64;
        for (r, ev) in net.feeds.iter() {
            if let ExternalEvent::EbgpAnnounce {
                prefix, peer_addr, ..
            } = ev
            {
                if rng.gen_bool(0.5) {
                    script.push((
                        t,
                        *r,
                        ExternalEvent::EbgpWithdraw {
                            prefix: *prefix,
                            peer_addr: *peer_addr,
                        },
                    ));
                    t += 5_000;
                    if rng.gen_bool(0.5) {
                        script.push((t, *r, ev.clone()));
                        t += 5_000;
                    }
                }
            }
        }
        let run = |mode: Mode| -> Sim<BgpNode> {
            let mut spec = net.spec_base.clone();
            spec.mode = mode.clone();
            spec.routers = net.routers.clone();
            if mode.has_abrr() {
                spec.ap_map = Some(ApMap::uniform(net.n_aps));
                for (i, part) in ApMap::uniform(net.n_aps).partitions().iter().enumerate() {
                    let mut arrs = vec![net.rrs[i % net.rrs.len()]];
                    if net.rrs.len() > 1 {
                        arrs.push(net.rrs[(i + 1) % net.rrs.len()]);
                    }
                    arrs.sort();
                    arrs.dedup();
                    spec.arrs.insert(part.id, arrs);
                }
            }
            let spec = Arc::new(spec);
            let mut sim = build_sim(spec);
            for (at, r, ev) in &script {
                sim.schedule_external(*at, *r, ev.clone());
            }
            let out = sim.run(RunLimits {
                max_events: 2_000_000,
                max_time: u64::MAX,
            });
            assert!(out.quiesced, "seed {seed} {mode:?} did not converge");
            sim
        };
        let mesh = run(Mode::FullMesh);
        let ab = run(Mode::Abrr);
        for r in &net.routers {
            for p in &net.prefixes {
                assert_eq!(
                    mesh.node(*r).selected(p).map(|s| s.exit_router()),
                    ab.node(*r).selected(p).map(|s| s.exit_router()),
                    "seed {seed}: router {r:?} prefix {p} after withdrawals"
                );
            }
        }
    }
}

#[test]
fn determinism_across_runs() {
    let net = random_net(42);
    let a = run_mode(&net, Mode::Abrr);
    let b = run_mode(&net, Mode::Abrr);
    for r in &net.routers {
        assert_eq!(a.node(*r).counters(), b.node(*r).counters());
        for p in &net.prefixes {
            assert_eq!(
                a.node(*r).selected(p).map(|s| s.exit_router()),
                b.node(*r).selected(p).map(|s| s.exit_router())
            );
        }
    }
}
