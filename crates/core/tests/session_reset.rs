//! Session bounce robustness: dropping a peer's routes and
//! re-synchronizing the Adj-RIB-Out must restore the exact pre-reset
//! steady state (BGP re-advertises its table on session establishment).

use abrr::prelude::*;
use abrr::spec::schedule_session_reset;
use std::sync::Arc;

fn pfx(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

fn feed(prefix: Ipv4Prefix, peer_as: u32, peer_addr: u32) -> ExternalEvent {
    ExternalEvent::EbgpAnnounce {
        prefix,
        peer_as: Asn(peer_as),
        peer_addr,
        attrs: Arc::new(PathAttributes::ebgp(
            AsPath::sequence([Asn(peer_as)]),
            NextHop(peer_addr),
        )),
    }
}

fn abrr_net() -> (Arc<NetworkSpec>, Sim<BgpNode>) {
    let view = igp::PopTopologyBuilder::new(2, 3).build();
    let routers = view.routers();
    let mut spec = NetworkSpec::full_mesh(&view.topo, Asn(65000));
    spec.mode = Mode::Abrr;
    spec.ap_map = Some(ApMap::uniform(2));
    spec.arrs.insert(ApId(0), vec![routers[0], routers[3]]);
    spec.arrs.insert(ApId(1), vec![routers[1]]);
    let spec = Arc::new(spec);
    let sim = build_sim(spec.clone());
    (spec, sim)
}

fn snapshot(
    sim: &Sim<BgpNode>,
    routers: &[RouterId],
    prefixes: &[Ipv4Prefix],
) -> Vec<Option<RouterId>> {
    routers
        .iter()
        .flat_map(|r| {
            prefixes
                .iter()
                .map(|p| sim.node(*r).selected(p).map(|s| s.exit_router()))
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn client_arr_session_bounce_restores_state() {
    let (spec, mut sim) = abrr_net();
    let routers = spec.routers.clone();
    let prefixes = vec![pfx("10.0.0.0/8"), pfx("192.168.0.0/16")];
    sim.schedule_external(0, routers[2], feed(prefixes[0], 7018, 9001));
    sim.schedule_external(0, routers[4], feed(prefixes[1], 3356, 9002));
    assert!(sim.run_to_quiescence().quiesced);
    let before = snapshot(&sim, &routers, &prefixes);

    // Bounce the session between a plain client and the AP0 ARR.
    let t = sim.now() + 1;
    schedule_session_reset(&mut sim, t, routers[5], routers[0]);
    assert!(sim.run_to_quiescence().quiesced);
    let after = snapshot(&sim, &routers, &prefixes);
    assert_eq!(before, after, "steady state must survive a session bounce");
}

#[test]
fn border_arr_session_bounce_restores_state() {
    // Bouncing the session between the *originating* border router and
    // its ARR forces the client→ARR direction to resync too.
    let (spec, mut sim) = abrr_net();
    let routers = spec.routers.clone();
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(0, routers[2], feed(p, 7018, 9001));
    assert!(sim.run_to_quiescence().quiesced);
    let before = snapshot(&sim, &routers, &[p]);
    assert!(before.iter().all(|e| e.is_some()));

    let t = sim.now() + 1;
    schedule_session_reset(&mut sim, t, routers[2], routers[0]);
    assert!(sim.run_to_quiescence().quiesced);
    assert_eq!(snapshot(&sim, &routers, &[p]), before);
    // The redundant ARR (routers[3]) kept everyone routed throughout —
    // paper §2.3.3's robustness argument for redundant ARRs.
    assert_eq!(
        sim.node(routers[3]).arr_in_entries(),
        1,
        "redundant ARR unaffected by the bounce"
    );
}

#[test]
fn trr_trr_session_bounce_restores_state() {
    let view = igp::PopTopologyBuilder::new(2, 3).build();
    let routers = view.routers();
    let mut spec = NetworkSpec::full_mesh(&view.topo, Asn(65000));
    spec.mode = Mode::Tbrr { multipath: false };
    spec.routers = routers.clone();
    spec.clusters = vec![
        ClusterSpec {
            id: 1,
            trrs: vec![routers[0]],
            clients: routers[1..3].to_vec(),
        },
        ClusterSpec {
            id: 2,
            trrs: vec![routers[3]],
            clients: routers[4..6].to_vec(),
        },
    ];
    let spec = Arc::new(spec);
    let mut sim = build_sim(spec.clone());
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(0, routers[1], feed(p, 7018, 9001));
    assert!(sim.run_to_quiescence().quiesced);
    let clients: Vec<RouterId> = spec.routers.clone();
    let before = snapshot(&sim, &clients, &[p]);
    assert!(before.iter().all(|e| e.is_some()));

    // Bounce the inter-cluster TRR-TRR session: cluster 2 loses the
    // route transiently, then the resync restores it.
    let t = sim.now() + 1;
    schedule_session_reset(&mut sim, t, routers[0], routers[3]);
    assert!(sim.run_to_quiescence().quiesced);
    assert_eq!(snapshot(&sim, &clients, &[p]), before);
}

#[test]
fn reset_of_unrelated_session_changes_nothing_and_costs_little() {
    let (spec, mut sim) = abrr_net();
    let routers = spec.routers.clone();
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(0, routers[2], feed(p, 7018, 9001));
    assert!(sim.run_to_quiescence().quiesced);
    let tx_before = sim.stats(routers[5]).transmitted;
    // routers[5] never advertised anything; bouncing its session to the
    // AP1 ARR must only trigger the ARR-side resync.
    let t = sim.now() + 1;
    schedule_session_reset(&mut sim, t, routers[5], routers[1]);
    assert!(sim.run_to_quiescence().quiesced);
    assert_eq!(
        sim.stats(routers[5]).transmitted,
        tx_before,
        "idle client resyncs nothing"
    );
    assert_eq!(
        sim.node(routers[5]).selected(&p).map(|s| s.exit_router()),
        Some(routers[2])
    );
}

#[test]
fn ebgp_export_accounting() {
    // Table 1, Client → eBGP Neighbor: exports counted per session with
    // sender exclusion.
    let (_spec, mut sim) = abrr_net();
    let p = pfx("10.0.0.0/8");
    // Router 3 (= routers[2] in id space R3) has TWO eBGP sessions; the
    // second-arriving route wins (higher LOCAL_PREF), changing the best.
    sim.schedule_external(0, RouterId(3), feed(p, 7018, 9001));
    sim.schedule_external(
        1,
        RouterId(3),
        ExternalEvent::EbgpAnnounce {
            prefix: p,
            peer_as: Asn(3356),
            peer_addr: 9002,
            attrs: Arc::new(
                PathAttributes::ebgp(AsPath::sequence([Asn(3356)]), NextHop(9002))
                    .with_local_pref(110),
            ),
        },
    );
    assert!(sim.run_to_quiescence().quiesced);
    // Best changed at least once; each change exports to the other
    // session (2 sessions - 1 learned-from).
    let exported = sim.node(RouterId(3)).counters().ebgp_exported;
    assert!(
        exported >= 1,
        "border with two sessions must export to the non-best session"
    );
    // A router with no eBGP sessions never exports.
    assert_eq!(sim.node(RouterId(5)).counters().ebgp_exported, 0);
}
