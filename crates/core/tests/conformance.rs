//! Protocol-conformance tests: each advertisement rule of paper Table 1
//! exercised against live engines.

use abrr::prelude::*;
use abrr::scenarios;
use std::sync::Arc;

fn pfx(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

fn feed(prefix: Ipv4Prefix, peer_as: u32, peer_addr: u32) -> ExternalEvent {
    ExternalEvent::EbgpAnnounce {
        prefix,
        peer_as: Asn(peer_as),
        peer_addr,
        attrs: Arc::new(PathAttributes::ebgp(
            AsPath::sequence([Asn(peer_as)]),
            NextHop(peer_addr),
        )),
    }
}

/// A 2-PoP / 2-routers-each ABRR network with routers 1,2 as the ARRs
/// of APs 0,1 respectively.
fn abrr_net() -> (Arc<NetworkSpec>, Sim<BgpNode>) {
    let view = igp::PopTopologyBuilder::new(2, 2).build();
    let mut spec = NetworkSpec::full_mesh(&view.topo, Asn(65000));
    spec.mode = Mode::Abrr;
    spec.ap_map = Some(ApMap::uniform(2));
    spec.arrs.insert(ApId(0), vec![RouterId(1)]);
    spec.arrs.insert(ApId(1), vec![RouterId(2)]);
    let spec = Arc::new(spec);
    let sim = build_sim(spec.clone());
    (spec, sim)
}

#[test]
fn client_advertises_only_to_covering_ap_arrs() {
    // 10.0.0.0/8 lies in AP0 (first half of the space): only ARR 1 may
    // hold it as a managed route.
    let (_spec, mut sim) = abrr_net();
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(0, RouterId(3), feed(p, 7018, 9001));
    assert!(sim.run_to_quiescence().quiesced);
    assert_eq!(sim.node(RouterId(1)).arr_in_entries(), 1);
    assert_eq!(sim.node(RouterId(2)).arr_in_entries(), 0);
}

#[test]
fn spanning_prefix_goes_to_all_covering_arrs() {
    // 0.0.0.0/0 overlaps both APs: both ARRs manage it (paper §2.1:
    // "If a prefix spans multiple APs, then the associated route is
    // advertised to the ARRs for all such APs").
    let (_spec, mut sim) = abrr_net();
    let p = Ipv4Prefix::DEFAULT;
    sim.schedule_external(0, RouterId(3), feed(p, 7018, 9001));
    assert!(sim.run_to_quiescence().quiesced);
    assert_eq!(sim.node(RouterId(1)).arr_in_entries(), 1);
    assert_eq!(sim.node(RouterId(2)).arr_in_entries(), 1);
}

#[test]
fn arr_does_not_return_route_to_sender() {
    let (_spec, mut sim) = abrr_net();
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(0, RouterId(3), feed(p, 7018, 9001));
    assert!(sim.run_to_quiescence().quiesced);
    // Router 3 originated the only route; the ARR must not have
    // advertised it back.
    assert!(sim
        .node(RouterId(3))
        .client_paths_from(RouterId(1), &p)
        .is_empty());
    // Router 4 must have received it from ARR 1.
    assert_eq!(
        sim.node(RouterId(4))
            .client_paths_from(RouterId(1), &p)
            .len(),
        1
    );
    // And the delivered route carries the reflected marker + originator.
    let (_, attrs) = &sim.node(RouterId(4)).client_paths_from(RouterId(1), &p)[0];
    assert!(attrs.is_abrr_reflected());
    assert_eq!(attrs.originator_id.map(|o| o.0), Some(3));
}

#[test]
fn client_never_advertises_ibgp_learned_routes() {
    let (_spec, mut sim) = abrr_net();
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(0, RouterId(3), feed(p, 7018, 9001));
    assert!(sim.run_to_quiescence().quiesced);
    // Router 4 selected the route (iBGP-learned) but generated no
    // advertisement for it.
    assert!(sim.node(RouterId(4)).selected(&p).is_some());
    assert_eq!(sim.node(RouterId(4)).counters().generated, 0);
    // The ARR for AP0 holds exactly one managed route (from router 3),
    // none echoed from other clients.
    assert_eq!(sim.node(RouterId(1)).arr_in_entries(), 1);
}

#[test]
fn withdraw_propagates_and_cleans_state() {
    let (_spec, mut sim) = abrr_net();
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(0, RouterId(3), feed(p, 7018, 9001));
    assert!(sim.run_to_quiescence().quiesced);
    assert!(sim.node(RouterId(4)).selected(&p).is_some());
    sim.schedule_external(
        sim.now() + 1,
        RouterId(3),
        ExternalEvent::EbgpWithdraw {
            prefix: p,
            peer_addr: 9001,
        },
    );
    assert!(sim.run_to_quiescence().quiesced);
    for (_, node) in sim.nodes() {
        assert!(
            node.selected(&p).is_none(),
            "stale route at {:?}",
            node.id()
        );
    }
    assert_eq!(sim.node(RouterId(1)).arr_in_entries(), 0);
    assert_eq!(sim.node(RouterId(1)).rib_out_size(), 0);
}

#[test]
fn arr_advertises_all_best_as_level_routes() {
    // Two exits with equal AS-level attributes: both survive steps 1-4
    // and both must reach every client.
    let (_spec, mut sim) = abrr_net();
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(0, RouterId(3), feed(p, 7018, 9001));
    sim.schedule_external(0, RouterId(4), feed(p, 7018, 9002));
    assert!(sim.run_to_quiescence().quiesced);
    // ARR 1 manages both.
    assert_eq!(sim.node(RouterId(1)).arr_in_entries(), 2);
    // A third client stores its *reduced* best (paper §3.4): exactly one.
    assert_eq!(
        sim.node(RouterId(2))
            .client_paths_from(RouterId(1), &p)
            .len(),
        1
    );
    // Hot potato: router 3 and 4 are in PoP 0 (with ARR 1); they keep
    // their own exits. Routers in PoP 1 pick their IGP-nearest exit.
    assert_eq!(
        sim.node(RouterId(3)).selected(&p).unwrap().exit_router(),
        RouterId(3)
    );
    assert_eq!(
        sim.node(RouterId(4)).selected(&p).unwrap().exit_router(),
        RouterId(4)
    );
}

#[test]
fn worse_as_level_route_is_not_reflected() {
    // A longer AS path loses steps 1-4 and must not appear in the
    // ARR's advertised set.
    let (_spec, mut sim) = abrr_net();
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(0, RouterId(3), feed(p, 7018, 9001));
    sim.schedule_external(
        0,
        RouterId(4),
        ExternalEvent::EbgpAnnounce {
            prefix: p,
            peer_as: Asn(3356),
            peer_addr: 9002,
            attrs: Arc::new(PathAttributes::ebgp(
                AsPath::sequence([Asn(3356), Asn(1299), Asn(7018)]),
                NextHop(9002),
            )),
        },
    );
    assert!(sim.run_to_quiescence().quiesced);
    // Client 2 (= ARR of AP1, client of AP0) sees only the short route.
    let paths = sim.node(RouterId(2)).client_paths_from(RouterId(1), &p);
    assert_eq!(paths.len(), 1);
    assert_eq!(paths[0].1.as_path.path_len(), 1);
    // Router 4's own eBGP route loses step 2 (longer AS path) before
    // the eBGP-over-iBGP step is ever reached: it exits via router 3.
    assert_eq!(
        sim.node(RouterId(4)).selected(&p).unwrap().exit_router(),
        RouterId(3)
    );
}

#[test]
fn tbrr_single_path_reflection_rules() {
    // Scenario: cluster 1 = {TRR 1; clients 3,4}, cluster 2 = {TRR 2;
    // client 5}. Router 3 announces. TRR1 must reflect to 4 (not back
    // to 3) and to TRR2; TRR2 reflects to 5 but NOT back to TRR1.
    let s = scenarios::med_gadget();
    let spec = Arc::new(s.spec(Mode::Tbrr { multipath: false }));
    let mut sim = build_sim(spec.clone());
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(0, RouterId(3), feed(p, 7018, 9001));
    assert!(sim.run_to_quiescence().quiesced);
    for r in [2u32, 4, 5] {
        let sel = sim.node(RouterId(r)).selected(&p).expect("route");
        assert_eq!(sel.exit_router(), RouterId(3), "router {r}");
    }
    // Cluster list stamped by the reflectors: client 5's copy passed
    // through TRR1 then TRR2.
    let paths = sim.node(RouterId(5)).client_paths_from(RouterId(2), &p);
    assert_eq!(paths.len(), 1);
    let attrs = &paths[0].1;
    assert_eq!(attrs.originator_id.map(|o| o.0), Some(3));
    assert_eq!(
        attrs.cluster_list.iter().map(|c| c.0).collect::<Vec<_>>(),
        vec![2, 1],
        "TRR2's cluster id prepended after TRR1's"
    );
    // Nothing bounced back to the originator.
    assert!(sim
        .node(RouterId(3))
        .client_paths_from(RouterId(1), &p)
        .is_empty());
}

#[test]
fn tbrr_multipath_advertises_set_to_clients() {
    let s = scenarios::med_gadget();
    let spec = Arc::new(s.spec(Mode::Tbrr { multipath: true }));
    let mut sim = build_sim(spec.clone());
    let p = pfx("10.0.0.0/8");
    // Equal AS-level routes at 3 and 5 (different clusters).
    sim.schedule_external(0, RouterId(3), feed(p, 7018, 9001));
    sim.schedule_external(0, RouterId(5), feed(p, 7018, 9002));
    let out = sim.run_to_quiescence();
    assert!(out.quiesced, "multi-path TBRR should converge here");
    // Client 4 received the reduced best from TRR1 out of a 2-route set;
    // TRR1's RIB-Out to clients holds both.
    assert!(sim.node(RouterId(1)).rib_out_size() >= 2);
    assert_eq!(
        sim.node(RouterId(4))
            .client_paths_from(RouterId(1), &p)
            .len(),
        1
    );
}

#[test]
fn tbrr_client_in_two_clusters_receives_twice() {
    // The §4.2 footnote: clients in two clusters receive updates from
    // both clusters' TRRs.
    let view = igp::PopTopologyBuilder::new(2, 3).build();
    let routers = view.routers();
    let (t1, t2) = (routers[0], routers[3]);
    let shared = routers[1]; // client of both clusters
    let c2 = routers[4];
    let other = routers[2];
    let mut spec = NetworkSpec::full_mesh(&view.topo, Asn(65000));
    spec.mode = Mode::Tbrr { multipath: false };
    spec.routers = vec![shared, c2, other];
    spec.clusters = vec![
        ClusterSpec {
            id: 1,
            trrs: vec![t1],
            clients: vec![shared, other],
        },
        ClusterSpec {
            id: 2,
            trrs: vec![t2],
            clients: vec![shared, c2],
        },
    ];
    let spec = Arc::new(spec);
    let mut sim = build_sim(spec.clone());
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(0, c2, feed(p, 7018, 9001));
    assert!(sim.run_to_quiescence().quiesced);
    // The shared client holds the route from both TRRs.
    let from_t1 = sim.node(shared).client_paths_from(t1, &p).len();
    let from_t2 = sim.node(shared).client_paths_from(t2, &p).len();
    assert_eq!((from_t1, from_t2), (1, 1));
    // And received at least two updates; the single-cluster client got
    // fewer.
    assert!(sim.node(shared).counters().received > sim.node(other).counters().received);
}

#[test]
fn tbrr_single_path_causes_path_inefficiency_abrr_does_not() {
    // Two equal AS-level exits in different PoPs. Under single-path
    // TBRR with a distant RR, some clients are forced through the RR's
    // choice; under ABRR every client exits at its IGP-nearest border
    // (paper §2.3.3).
    let view = igp::PopTopologyBuilder::new(2, 3).build();
    let routers = view.routers();
    // PoP0: 1,2,3; PoP1: 4,5,6. Exits at 2 (PoP0) and 5 (PoP1).
    let p = pfx("10.0.0.0/8");
    let feeds = vec![
        (routers[1], feed(p, 7018, 9001)),
        (routers[4], feed(p, 7018, 9002)),
    ];
    // TBRR: single cluster, RR = router 1 (in PoP0!), all others clients.
    let mut tbrr = NetworkSpec::full_mesh(&view.topo, Asn(65000));
    tbrr.mode = Mode::Tbrr { multipath: false };
    tbrr.routers = routers.clone();
    tbrr.clusters = vec![ClusterSpec {
        id: 1,
        trrs: vec![routers[0]],
        clients: routers[1..].to_vec(),
    }];
    let tbrr = Arc::new(tbrr);
    let mut tbrr_sim = build_sim(tbrr.clone());
    for (r, ev) in &feeds {
        tbrr_sim.schedule_external(0, *r, ev.clone());
    }
    assert!(tbrr_sim.run_to_quiescence().quiesced);
    // The PoP1 non-exit client is steered to PoP0's exit by the RR.
    let victim = routers[5];
    let tbrr_exit = tbrr_sim.node(victim).selected(&p).unwrap().exit_router();
    assert_eq!(
        tbrr_exit, routers[1],
        "RR's hot-potato choice wins under TBRR"
    );

    // ABRR: ARRs anywhere (even both in PoP0 — placement freedom).
    let mut ab = NetworkSpec::full_mesh(&view.topo, Asn(65000));
    ab.mode = Mode::Abrr;
    ab.ap_map = Some(ApMap::uniform(1));
    ab.arrs.insert(ApId(0), vec![routers[0]]);
    let ab = Arc::new(ab);
    let mut ab_sim = build_sim(ab.clone());
    for (r, ev) in &feeds {
        ab_sim.schedule_external(0, *r, ev.clone());
    }
    assert!(ab_sim.run_to_quiescence().quiesced);
    let ab_exit = ab_sim.node(victim).selected(&p).unwrap().exit_router();
    assert_eq!(ab_exit, routers[4], "ABRR exits at the IGP-nearest border");
}

#[test]
fn full_mesh_counters_and_sessions() {
    let view = igp::PopTopologyBuilder::new(2, 2).build();
    let spec = Arc::new(NetworkSpec::full_mesh(&view.topo, Asn(65000)));
    let mut sim = build_sim(spec.clone());
    let p = pfx("10.0.0.0/8");
    sim.schedule_external(0, RouterId(1), feed(p, 7018, 9001));
    assert!(sim.run_to_quiescence().quiesced);
    // One generation, three transmissions (one per peer).
    assert_eq!(sim.node(RouterId(1)).counters().generated, 1);
    assert_eq!(sim.node(RouterId(1)).counters().transmitted, 3);
    for r in [2u32, 3, 4] {
        assert_eq!(sim.stats(RouterId(r)).received, 1);
    }
}

#[test]
fn ebgp_ingress_scrubs_internal_attributes() {
    // A malicious/buggy eBGP feed carrying iBGP-internal attributes
    // must be scrubbed at the border.
    let (_spec, mut sim) = abrr_net();
    let p = pfx("10.0.0.0/8");
    let mut attrs = PathAttributes::ebgp(AsPath::sequence([Asn(7018)]), NextHop(9001));
    attrs.originator_id = Some(bgp_types::OriginatorId(99));
    attrs.cluster_list = vec![bgp_types::ClusterId(7)];
    attrs.ext_communities = vec![bgp_types::ExtCommunity::ABRR_REFLECTED];
    sim.schedule_external(
        0,
        RouterId(3),
        ExternalEvent::EbgpAnnounce {
            prefix: p,
            peer_as: Asn(7018),
            peer_addr: 9001,
            attrs: Arc::new(attrs),
        },
    );
    assert!(sim.run_to_quiescence().quiesced);
    // The route still propagated (the marker would have been dropped at
    // the ARR otherwise).
    assert!(sim.node(RouterId(4)).selected(&p).is_some());
    let sel = sim.node(RouterId(3)).selected(&p).unwrap();
    assert!(sel.attrs.cluster_list.is_empty());
    assert_eq!(sel.attrs.next_hop, NextHop(3), "next-hop-self applied");
}

#[test]
fn local_origination_propagates() {
    let (_spec, mut sim) = abrr_net();
    let p = pfx("192.168.0.0/16"); // second half: AP1, ARR = router 2
    sim.schedule_external(
        0,
        RouterId(4),
        ExternalEvent::Local {
            prefix: p,
            announce: true,
        },
    );
    assert!(sim.run_to_quiescence().quiesced);
    assert_eq!(sim.node(RouterId(2)).arr_in_entries(), 1);
    for r in [1u32, 2, 3] {
        assert_eq!(
            sim.node(RouterId(r)).selected(&p).unwrap().exit_router(),
            RouterId(4),
            "router {r}"
        );
    }
}
