//! AP-sharded parallel execution with session-boundary fences.
//!
//! [`Sim::run_sharded`] is the second parallel engine. Where
//! [`Sim::run_parallel`] barriers every node at every timestamp, this
//! engine exploits the structure ABRR itself provides: prefix-plane
//! events (UPDATE/WITHDRAW deliveries, MRAI flush timers, per-prefix
//! decision recomputations) in different Address Partitions never
//! interact, so per-AP work can run ahead across *multiple* timestamps
//! on its own shard worker. Only *session-plane* events — session
//! up/down, node crash/restart, and protocol-declared externals like
//! session resets and AP reassignment — synchronize: they act as
//! fences at which every shard rendezvouses before the shared session
//! and role structure changes.
//!
//! Concretely, the loop alternates between two states:
//!
//! * **Fence**: the head event is global (`parallel::is_global`) or
//!   an external the protocol classifies as [`ExternalClass::Fence`].
//!   It runs sequentially through the exact [`Sim::run`] dispatch path.
//! * **Window**: the head is pure. The engine pops a *window* of pure
//!   events spanning as many timestamps as the lookahead horizon
//!   allows, partitions it by node, routes each node task to a shard
//!   worker chosen by AP affinity ([`Protocol::msg_shard`] /
//!   [`ExternalClass::Prefix`] hints), executes tasks concurrently,
//!   and merges the collected actions back in exact sequential order.
//!
//! # The lookahead horizon (why multi-timestamp windows are safe)
//!
//! The sequential engine processes events in `(time, id)` order, and
//! ids double as tie-breaks *and* trace keys, so equivalence requires
//! replaying the exact id-assignment schedule. A window is safe exactly
//! when no action emitted by a window event can precede any window
//! event in that order. Let `lead(n)` be a lower bound on how far into
//! the future node `n`'s callbacks can schedule anything:
//!
//! ```text
//! lead(n) = min( min latency of any session incident to n,
//!                n.timer_lead() )
//! ```
//!
//! A callback running at time `t` on node `n` can only push events at
//! `t' >= t + lead(n)` (sends arrive after session latency; timers obey
//! the [`Protocol::timer_lead`] promise). The collection loop
//! maintains `horizon = min over collected events e of (t_e +
//! lead(node_e))` and admits the next heap head only while `head.at <=
//! horizon`. For any two window events `e_i`, `e_j`: if `e_j` was
//! admitted after `e_i` then `t_j <= t_i + lead(node_i)` by the
//! horizon check, and if before, then `t_i >= t_j` since the heap pops
//! in nondecreasing time. Either way every push from `e_i` lands at
//! `t' >= t_j`; and at `t' == t_j` the push's fresh sequence id is
//! larger than `e_j`'s. So the window is **exactly the next |window|
//! events of the sequential schedule** — no speculation, no rollback.
//! Merging actions in ascending window order (with `now` set to each
//! originating event's time) then reproduces the sequential engine's
//! pushes, ids, counters, and trace stamps verbatim.
//!
//! With the default `timer_lead() == 0` the horizon collapses to the
//! head timestamp and windows degenerate to per-timestamp epochs —
//! sound for any protocol, including ones that set same-instant
//! timers. BGP nodes promise real leads (processing delay, strictly
//! future MRAI flushes), and with MRAI off a window stretches to the
//! minimum session latency — classic conservative-DES lookahead.
//!
//! # Why fences are where they are
//!
//! Global events mutate the session table and the `down` set that
//! every in-window drop decision and `lead` bound reads. Protocol
//! fences (see `abrr`'s classification) cover externals whose handlers
//! rewrite *cross-prefix* routing structure: a session reset purges
//! and resyncs entire peer state; an AP reassignment rewrites peer
//! groups and the managed table for every prefix of the AP; a
//! transition cutover re-evaluates every covered prefix. Running those
//! inside a window would interleave one shard's structural rewrite
//! with other shards' per-prefix work — the sharded engine instead
//! drains all shards, applies the change on the sequential path, and
//! reopens windows against the new structure.
//!
//! Shard routing itself (`hint % shards`, falling back to the node id)
//! is deliberately only a locality lever: correctness comes from
//! per-node task serialization plus the canonical merge order, so a
//! spanning prefix or a mis-hinted message costs locality, never
//! determinism.

use crate::parallel::{is_global, NodeEvent};
use crate::sim::{Action, Ctx, Engine, Event, ExternalClass, Protocol, RunLimits, RunOutcome, Sim};
use crate::Time;
use bgp_types::RouterId;
use std::collections::BTreeMap;
use std::sync::mpsc;

/// One popped window event before partitioning: `(node, at, id, event,
/// shard hint)`. The hint is `Some` only for deliveries and externals
/// that carried an [`ExternalClass::Prefix`] / [`Protocol::msg_shard`]
/// affinity.
type WindowEntry<P> = (RouterId, Time, u64, NodeEvent<P>, Option<u64>);

/// One node's events within a window, in ascending `(time, id)` order.
/// Unlike the epoch engine's task, each event carries its own firing
/// time: a window spans timestamps.
struct WindowTask<P: Protocol> {
    slot: usize,
    node_id: RouterId,
    node: P,
    /// `(pos, at, id, event)`: `pos` indexes the window batch for the
    /// merge; `(at, id)` is the entry's canonical dispatch stamp.
    events: Vec<(u32, Time, u64, NodeEvent<P>)>,
    /// Destination shard worker.
    shard: usize,
}

/// A worker's result: the node moved back, one flat action buffer, and
/// per-event `(pos, at, action count)` bounds for the ordered merge.
struct WindowResult<P: Protocol> {
    slot: usize,
    node_id: RouterId,
    node: P,
    actions: Vec<Action<P::Msg>>,
    bounds: Vec<(u32, Time, u32)>,
}

fn execute_window_task<P: Protocol>(task: WindowTask<P>) -> WindowResult<P> {
    let task_start = obs::profile::enabled().then(std::time::Instant::now);
    let WindowTask {
        slot,
        node_id,
        mut node,
        events,
        shard: _,
    } = task;
    let mut actions: Vec<Action<P::Msg>> = Vec::new();
    let mut bounds = Vec::with_capacity(events.len());
    for (pos, at, id, ev) in events {
        let start = actions.len();
        // The same (time, id) stamp the sequential engine would use
        // for this event, so traces merge byte-identically.
        obs::trace::set_dispatch(at, id);
        let mut ctx = Ctx::for_worker(at, node_id, actions);
        match ev {
            NodeEvent::Msg { from, msg } => node.on_message(&mut ctx, from, msg),
            NodeEvent::Timer { token } => node.on_timer(&mut ctx, token),
            NodeEvent::External { ev } => node.on_external(&mut ctx, ev),
        }
        actions = ctx.into_actions();
        bounds.push((pos, at, (actions.len() - start) as u32));
    }
    if let Some(t0) = task_start {
        obs::profile::add_task_ns(t0.elapsed().as_nanos() as u64);
    }
    WindowResult {
        slot,
        node_id,
        node,
        actions,
        bounds,
    }
}

impl<P: Protocol> Sim<P> {
    /// Runs one of the three engines, selected at runtime. All produce
    /// bit-identical results for the same limits.
    pub fn run_engine(&mut self, engine: Engine, limits: RunLimits) -> RunOutcome
    where
        P: Send,
        P::Msg: Send,
        P::External: Send,
    {
        match engine {
            Engine::Seq => self.run(limits),
            Engine::Epoch(n) => self.run_parallel(n, limits),
            Engine::Sharded(n) => self.run_sharded(n, limits),
        }
    }

    /// Runs the event loop on `shards` shard workers with per-shard
    /// task queues and session-boundary fences (see module docs),
    /// producing results bit-identical to [`Sim::run`].
    ///
    /// `shards <= 1` runs the sequential loop directly — one worker
    /// gains nothing from window machinery, and [`Sim::run`] stamps
    /// the same dispatch ids, so obs traces stay byte-identical.
    pub fn run_sharded(&mut self, shards: usize, limits: RunLimits) -> RunOutcome
    where
        P: Send,
        P::Msg: Send,
        P::External: Send,
    {
        if shards <= 1 {
            return self.run(limits);
        }
        // One task channel per shard (the "explicit cross-shard
        // channels": the merge thread is the only producer, so
        // session-plane effects reach a shard only between windows),
        // one shared result channel back.
        let mut task_txs: Vec<mpsc::Sender<WindowTask<P>>> = Vec::with_capacity(shards);
        let mut task_rxs: Vec<mpsc::Receiver<WindowTask<P>>> = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel();
            task_txs.push(tx);
            task_rxs.push(rx);
        }
        let (res_tx, res_rx) = mpsc::channel::<WindowResult<P>>();
        std::thread::scope(|s| {
            for rx in task_rxs {
                let res_tx = res_tx.clone();
                s.spawn(move || {
                    while let Ok(task) = rx.recv() {
                        if res_tx.send(execute_window_task(task)).is_err() {
                            break;
                        }
                    }
                    // Flush buffered trace events inside the closure:
                    // the thread-local drop-flush can run after the
                    // scope join observes this worker as finished,
                    // which would race a drain on the main thread.
                    obs::trace::flush_local();
                });
            }
            let outcome = self.run_windows(shards, limits, &mut |tasks| {
                let k = tasks.len();
                for t in tasks {
                    let shard = t.shard;
                    task_txs[shard].send(t).expect("shard worker hung up");
                }
                (0..k)
                    .map(|_| res_rx.recv().expect("shard worker panicked"))
                    .collect()
            });
            // Hang up so the workers' recv() errors and they exit.
            drop(task_txs);
            outcome
        })
    }

    /// Convenience: [`Sim::run_sharded`] with default limits.
    pub fn run_sharded_to_quiescence(&mut self, shards: usize) -> RunOutcome
    where
        P: Send,
        P::Msg: Send,
        P::External: Send,
    {
        self.run_sharded(shards, RunLimits::default())
    }

    /// Whether the head event synchronizes: a global event, or an
    /// external the receiving protocol classifies as session-plane.
    fn is_fence(&self, ev: &Event<P>) -> bool {
        if is_global(ev) {
            return true;
        }
        if let Event::External { node, ev } = ev {
            if let Some(n) = self.nodes.get(node) {
                return matches!(n.classify_external(ev), ExternalClass::Fence);
            }
        }
        false
    }

    /// Per-node lookahead bounds: `min(min incident session latency,
    /// timer_lead)`. Rebuilt after every fence (the only points where
    /// sessions or node liveness change mid-run).
    fn build_leads(&self, leads: &mut BTreeMap<RouterId, Time>) {
        leads.clear();
        for (id, node) in &self.nodes {
            leads.insert(*id, node.timer_lead());
        }
        for (&(a, b), &lat) in &self.sessions {
            for n in [a, b] {
                if let Some(l) = leads.get_mut(&n) {
                    *l = (*l).min(lat);
                }
            }
        }
    }

    /// The window loop shared by the pooled executor (and trivially
    /// testable with an inline one). `exec` runs a set of tasks and
    /// returns their results in any order.
    fn run_windows(
        &mut self,
        shards: usize,
        limits: RunLimits,
        exec: &mut dyn FnMut(Vec<WindowTask<P>>) -> Vec<WindowResult<P>>,
    ) -> RunOutcome {
        let profiling = obs::profile::enabled();
        let run_start = profiling.then(std::time::Instant::now);
        if profiling {
            obs::profile::run_started();
        }
        obs::trace::new_run();
        self.start();
        let mut events = 0u64;
        let mut windows = 0u64;
        let mut fences = 0u64;
        let mut max_queue = 0usize;
        let mut max_window_batch = 0usize;
        let mut leads: BTreeMap<RouterId, Time> = BTreeMap::new();
        let mut leads_stale = true;
        let quiesced = 'run: loop {
            let Some(head) = self.heap.peek() else {
                break 'run true;
            };
            let at = head.at;
            if events >= limits.max_events || at > limits.max_time {
                break 'run false;
            }
            if profiling {
                max_queue = max_queue.max(self.heap.len());
            }
            if self.is_fence(&head.ev) {
                // Session-plane: all shards have rendezvoused (the
                // previous window fully merged), so mutate shared
                // state on the exact sequential path.
                let entry = self.heap.pop().expect("peeked entry vanished");
                self.now = at;
                events += 1;
                fences += 1;
                obs::trace::set_dispatch(at, entry.id);
                self.dispatch_event(entry.ev);
                leads_stale = true;
                continue;
            }
            if leads_stale {
                self.build_leads(&mut leads);
                leads_stale = false;
            }
            // Collect a window: pure events in heap order while the
            // lookahead horizon allows, replicating the sequential
            // engine's per-event drop bookkeeping (drops count as
            // processed events).
            let mut batch: Vec<WindowEntry<P>> = Vec::new();
            let mut horizon = Time::MAX;
            let mut window_end = at;
            while let Some(head) = self.heap.peek() {
                if head.at > horizon
                    || head.at > limits.max_time
                    || events >= limits.max_events
                    || self.is_fence(&head.ev)
                {
                    break;
                }
                let entry = self.heap.pop().expect("peeked entry vanished");
                let t = entry.at;
                events += 1;
                window_end = t;
                match entry.ev {
                    Event::Deliver { from, to, msg } => {
                        if self.down.contains(&to) {
                            self.dropped += 1;
                            continue;
                        }
                        if let Some(stats) = self.stats.get_mut(&to) {
                            stats.received += 1;
                        }
                        let hint = self.nodes.get(&to).map(|n| n.msg_shard(&msg));
                        horizon = horizon.min(t.saturating_add(lead_of(&leads, to)));
                        batch.push((to, t, entry.id, NodeEvent::Msg { from, msg }, hint));
                    }
                    Event::Timer { node, token } => {
                        if self.down.contains(&node) {
                            continue;
                        }
                        horizon = horizon.min(t.saturating_add(lead_of(&leads, node)));
                        batch.push((node, t, entry.id, NodeEvent::Timer { token }, None));
                    }
                    Event::External { node, ev } => {
                        if self.down.contains(&node) {
                            self.dropped += 1;
                            continue;
                        }
                        // is_fence() returned false for this entry, so
                        // the classification is Prefix (or the node is
                        // absent and the callback will no-op anyway).
                        let hint = self
                            .nodes
                            .get(&node)
                            .map(|n| match n.classify_external(&ev) {
                                ExternalClass::Prefix { shard_hint } => shard_hint,
                                ExternalClass::Fence => 0,
                            });
                        horizon = horizon.min(t.saturating_add(lead_of(&leads, node)));
                        batch.push((node, t, entry.id, NodeEvent::External { ev }, hint));
                    }
                    _ => unreachable!("global event in pure window"),
                }
            }
            self.now = window_end;
            let n = batch.len();
            if n == 0 {
                continue;
            }
            // Partition by node, preserving ascending event order
            // within each task; the first explicit hint of a node's
            // events picks its shard, falling back to the node id.
            let mut slot_of: BTreeMap<RouterId, usize> = BTreeMap::new();
            let mut tasks: Vec<WindowTask<P>> = Vec::new();
            for (pos, (node_id, t, id, ev, hint)) in batch.into_iter().enumerate() {
                let slot = match slot_of.get(&node_id) {
                    Some(&s) => s,
                    None => {
                        // A node can be absent only if a callback host
                        // was never registered; mirror `with_node`'s
                        // silent no-op in that case.
                        let Some(node) = self.nodes.remove(&node_id) else {
                            continue;
                        };
                        let s = tasks.len();
                        tasks.push(WindowTask {
                            slot: s,
                            node_id,
                            node,
                            events: Vec::new(),
                            shard: (node_id.0 as usize) % shards,
                        });
                        slot_of.insert(node_id, s);
                        s
                    }
                };
                if tasks[slot].events.is_empty() {
                    if let Some(h) = hint {
                        tasks[slot].shard = (h as usize) % shards;
                    }
                }
                tasks[slot].events.push((pos as u32, t, id, ev));
            }
            if profiling {
                windows += 1;
                max_window_batch = max_window_batch.max(n);
            }
            let k = tasks.len();
            let results = exec(tasks);
            assert_eq!(results.len(), k, "shard result missing");
            // Re-key results by slot, hand the nodes back, and build
            // the pos -> (slot, time, action count) index.
            let mut per_pos: Vec<(u32, Time, u32)> = vec![(0, 0, 0); n];
            let mut iters: Vec<Option<std::vec::IntoIter<Action<P::Msg>>>> =
                (0..k).map(|_| None).collect();
            let mut from_of: Vec<RouterId> = vec![RouterId(0); k];
            for r in results {
                for &(pos, t, count) in &r.bounds {
                    per_pos[pos as usize] = (r.slot as u32 + 1, t, count);
                }
                self.nodes.insert(r.node_id, r.node);
                from_of[r.slot] = r.node_id;
                iters[r.slot] = Some(r.actions.into_iter());
            }
            // Merge: apply every callback's actions in ascending window
            // order with `now` set to the originating event's time —
            // the exact interleaving (and sequence-id assignment) of
            // the sequential loop.
            for &(slot1, t, count) in per_pos.iter() {
                if slot1 == 0 {
                    continue;
                }
                let slot = (slot1 - 1) as usize;
                let from = from_of[slot];
                self.now = t;
                let it = iters[slot].as_mut().expect("result slot unfilled");
                for _ in 0..count {
                    let action = it.next().expect("action bounds out of sync");
                    self.apply_action(from, action);
                }
            }
            self.now = window_end;
        };
        obs::trace::clear_dispatch();
        self.record_run_metrics(events);
        if let Some(t0) = run_start {
            obs::profile::run_finished(obs::profile::RunProfile {
                engine: "sharded",
                threads: shards,
                wall_ns: t0.elapsed().as_nanos() as u64,
                events,
                epochs: windows,
                fences,
                max_queue,
                max_epoch_batch: max_window_batch,
                task_ns: 0,
            });
        }
        RunOutcome {
            quiesced,
            events,
            end_time: self.now,
        }
    }
}

/// Lead for a node; absent nodes host no callbacks (the task partition
/// no-ops them), so they cannot schedule anything.
fn lead_of(leads: &BTreeMap<RouterId, Time>, node: RouterId) -> Time {
    leads.get(&node).copied().unwrap_or(Time::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::NodeStats;

    /// Same fixture as the epoch-engine tests: echoes every received
    /// number minus one to both ring neighbours, with same-instant
    /// self-timer cascades. `timer_lead` stays at the default 0, so
    /// windows degenerate to per-timestamp epochs — the sound fallback
    /// the engine must get right before lookahead buys anything.
    struct Gossip {
        peers: Vec<RouterId>,
        sum: u64,
        log: Vec<(RouterId, u32)>,
    }

    impl Protocol for Gossip {
        type Msg = u32;
        type External = u32;

        fn on_message(&mut self, ctx: &mut Ctx<u32>, from: RouterId, msg: u32) {
            self.sum += msg as u64;
            self.log.push((from, msg));
            if msg > 0 {
                for &p in &self.peers {
                    ctx.send(p, msg - 1);
                }
            }
        }

        fn on_external(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
            if ev >= 100 {
                ctx.set_timer(ctx.now(), (ev - 100) as u64);
                return;
            }
            for &p in &self.peers {
                ctx.send(p, ev);
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<u32>, token: u64) {
            self.sum += token;
            if token > 0 {
                ctx.set_timer(ctx.now(), token - 1);
            }
        }

        fn on_session_down(&mut self, _ctx: &mut Ctx<u32>, peer: RouterId) {
            self.log.push((peer, u32::MAX));
        }

        fn on_session_up(&mut self, _ctx: &mut Ctx<u32>, peer: RouterId) {
            self.log.push((peer, u32::MAX - 1));
        }

        fn on_restart(&mut self, _ctx: &mut Ctx<u32>) {
            self.sum = 0;
            self.log.clear();
        }

        fn msg_shard(&self, msg: &u32) -> u64 {
            // Deliberately scatter: shard by payload parity to prove
            // routing is a locality lever, not a correctness one.
            (*msg % 2) as u64
        }
    }

    fn ring(n: u32, latency_of: impl Fn(u32) -> Time) -> Sim<Gossip> {
        let mut sim = Sim::new();
        for i in 0..n {
            let peers = vec![RouterId((i + 1) % n), RouterId((i + n - 1) % n)];
            sim.add_node(
                RouterId(i),
                Gossip {
                    peers,
                    sum: 0,
                    log: vec![],
                },
            );
        }
        for i in 0..n {
            let j = (i + 1) % n;
            sim.add_session(RouterId(i), RouterId(j), latency_of(i));
        }
        sim
    }

    type Fingerprint = (Vec<(RouterId, u64, Vec<(RouterId, u32)>)>, u64, Time);

    fn fingerprint(sim: &Sim<Gossip>) -> Fingerprint {
        let nodes = sim
            .nodes()
            .map(|(id, g)| (id, g.sum, g.log.clone()))
            .collect();
        (nodes, sim.dropped_messages(), sim.now())
    }

    fn stats_of(sim: &Sim<Gossip>) -> Vec<(RouterId, NodeStats)> {
        sim.nodes().map(|(id, _)| (id, sim.stats(id))).collect()
    }

    fn seed(sim: &mut Sim<Gossip>) {
        sim.schedule_external(0, RouterId(0), 6);
        sim.schedule_external(0, RouterId(3), 6);
        sim.schedule_external(5, RouterId(1), 4);
        // Faults mid-run: fences must interleave correctly.
        sim.schedule_session_down(20, RouterId(0), RouterId(1));
        sim.schedule_node_down(40, RouterId(2));
        sim.schedule_node_up(60, RouterId(2));
        sim.schedule_session_up(70, RouterId(0), RouterId(1), 10);
        sim.schedule_external(80, RouterId(0), 3);
    }

    #[test]
    fn sharded_matches_sequential_uniform_latency() {
        let mut seq = ring(8, |_| 10);
        seed(&mut seq);
        let out_seq = seq.run_to_quiescence();

        for shards in [1, 2, 8] {
            let mut sh = ring(8, |_| 10);
            seed(&mut sh);
            let out_sh = sh.run_sharded(shards, RunLimits::default());
            assert_eq!(out_seq, out_sh, "outcome differs at {shards} shards");
            assert_eq!(
                fingerprint(&seq),
                fingerprint(&sh),
                "state differs at {shards} shards"
            );
            assert_eq!(stats_of(&seq), stats_of(&sh));
        }
    }

    #[test]
    fn sharded_matches_sequential_skewed_latency() {
        let mut seq = ring(8, |i| 7 + 13 * (i as Time));
        seed(&mut seq);
        seq.run_to_quiescence();

        let mut sh = ring(8, |i| 7 + 13 * (i as Time));
        seed(&mut sh);
        sh.run_sharded(4, RunLimits::default());
        assert_eq!(fingerprint(&seq), fingerprint(&sh));
        assert_eq!(stats_of(&seq), stats_of(&sh));
    }

    #[test]
    fn sharded_respects_event_limit_identically() {
        let limits = RunLimits {
            max_events: 37,
            max_time: Time::MAX,
        };
        let mut seq = ring(6, |_| 5);
        seed(&mut seq);
        let out_seq = seq.run(limits);
        assert!(!out_seq.quiesced);

        let mut sh = ring(6, |_| 5);
        seed(&mut sh);
        let out_sh = sh.run_sharded(3, limits);
        assert_eq!(out_seq, out_sh);
        assert_eq!(fingerprint(&seq), fingerprint(&sh));
    }

    #[test]
    fn sharded_respects_time_limit_identically() {
        let limits = RunLimits {
            max_events: u64::MAX,
            max_time: 45,
        };
        let mut seq = ring(6, |_| 5);
        seed(&mut seq);
        let out_seq = seq.run(limits);

        let mut sh = ring(6, |_| 5);
        seed(&mut sh);
        let out_sh = sh.run_sharded(3, limits);
        assert_eq!(out_seq, out_sh);
        assert_eq!(fingerprint(&seq), fingerprint(&sh));
    }

    #[test]
    fn same_timestamp_timer_chains_match() {
        let seed_timers = |sim: &mut Sim<Gossip>| {
            sim.schedule_external(0, RouterId(0), 2);
            sim.schedule_external(10, RouterId(1), 105);
            sim.schedule_external(10, RouterId(2), 103);
            sim.schedule_external(15, RouterId(1), 0);
        };
        let mut seq = ring(4, |_| 10);
        seed_timers(&mut seq);
        seq.run_to_quiescence();
        assert!(seq.node(RouterId(1)).sum >= 15);

        let mut sh = ring(4, |_| 10);
        seed_timers(&mut sh);
        sh.run_sharded(8, RunLimits::default());
        assert_eq!(fingerprint(&seq), fingerprint(&sh));
    }

    #[test]
    fn run_can_continue_after_run_sharded() {
        let mut a = ring(8, |_| 10);
        seed(&mut a);
        a.run_to_quiescence();

        let mut b = ring(8, |_| 10);
        seed(&mut b);
        let limits = RunLimits {
            max_events: 25,
            max_time: Time::MAX,
        };
        b.run_sharded(4, limits);
        b.run_to_quiescence();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn run_engine_selects_all_three() {
        let mut seq = ring(8, |_| 10);
        seed(&mut seq);
        seq.run_engine(Engine::Seq, RunLimits::default());
        for engine in [Engine::Epoch(2), Engine::Sharded(2)] {
            let mut other = ring(8, |_| 10);
            seed(&mut other);
            other.run_engine(engine, RunLimits::default());
            assert_eq!(fingerprint(&seq), fingerprint(&other), "{engine:?}");
        }
    }

    /// A protocol with a real lookahead promise: every timer it sets is
    /// at least LEAD in the future, and it classifies one external as a
    /// fence. Exercises multi-timestamp windows (distinct per-session
    /// latencies keep events from clustering at one instant) plus the
    /// fence path, against the sequential oracle.
    const LEAD: Time = 4;

    struct Paced {
        peers: Vec<RouterId>,
        fired: Vec<(Time, u64)>,
        got: Vec<(Time, RouterId, u32)>,
        resets: u32,
    }

    enum PacedEv {
        Kick(u32),
        Reset,
    }

    impl Protocol for Paced {
        type Msg = u32;
        type External = PacedEv;

        fn on_message(&mut self, ctx: &mut Ctx<u32>, from: RouterId, msg: u32) {
            self.got.push((ctx.now(), from, msg));
            if msg > 0 {
                // Re-arm a paced retransmit and forward.
                ctx.set_timer(ctx.now() + LEAD + (msg as Time % 3), msg as u64);
                for &p in &self.peers {
                    ctx.send(p, msg - 1);
                }
            }
        }

        fn on_external(&mut self, ctx: &mut Ctx<u32>, ev: PacedEv) {
            match ev {
                PacedEv::Kick(v) => {
                    for &p in &self.peers {
                        ctx.send(p, v);
                    }
                }
                PacedEv::Reset => {
                    self.resets += 1;
                    self.fired.clear();
                    self.got.clear();
                }
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<u32>, token: u64) {
            self.fired.push((ctx.now(), token));
            if token > 1 {
                ctx.set_timer(ctx.now() + LEAD, token - 2);
            }
        }

        fn classify_external(&self, ev: &PacedEv) -> ExternalClass {
            match ev {
                PacedEv::Kick(v) => ExternalClass::Prefix {
                    shard_hint: *v as u64,
                },
                PacedEv::Reset => ExternalClass::Fence,
            }
        }

        fn msg_shard(&self, msg: &u32) -> u64 {
            *msg as u64
        }

        fn timer_lead(&self) -> Time {
            LEAD
        }
    }

    fn paced_ring(n: u32) -> Sim<Paced> {
        let mut sim = Sim::new();
        for i in 0..n {
            let peers = vec![RouterId((i + 1) % n), RouterId((i + n - 1) % n)];
            sim.add_node(
                RouterId(i),
                Paced {
                    peers,
                    fired: vec![],
                    got: vec![],
                    resets: 0,
                },
            );
        }
        for i in 0..n {
            let j = (i + 1) % n;
            // Distinct latencies: no two deliveries share a timestamp,
            // so only genuine lookahead (latency + timer_lead) can
            // batch more than one event per window.
            sim.add_session(RouterId(i), RouterId(j), 5 + (i as Time) * 3);
        }
        sim
    }

    fn seed_paced(sim: &mut Sim<Paced>) {
        sim.schedule_external(0, RouterId(0), PacedEv::Kick(9));
        sim.schedule_external(2, RouterId(4), PacedEv::Kick(7));
        sim.schedule_external(33, RouterId(1), PacedEv::Reset);
        sim.schedule_session_down(50, RouterId(2), RouterId(3));
        sim.schedule_external(60, RouterId(5), PacedEv::Kick(5));
    }

    type PacedPrint = (
        Vec<(RouterId, Vec<(Time, u64)>, Vec<(Time, RouterId, u32)>, u32)>,
        u64,
    );

    fn paced_print(sim: &Sim<Paced>) -> PacedPrint {
        let nodes = sim
            .nodes()
            .map(|(id, p)| (id, p.fired.clone(), p.got.clone(), p.resets))
            .collect();
        (nodes, sim.dropped_messages())
    }

    #[test]
    fn lookahead_windows_match_sequential() {
        let mut seq = paced_ring(7);
        seed_paced(&mut seq);
        let out_seq = seq.run_to_quiescence();
        assert!(out_seq.quiesced);

        for shards in [2, 8] {
            let mut sh = paced_ring(7);
            seed_paced(&mut sh);
            let out_sh = sh.run_sharded(shards, RunLimits::default());
            assert_eq!(out_seq, out_sh, "outcome differs at {shards} shards");
            assert_eq!(
                paced_print(&seq),
                paced_print(&sh),
                "state differs at {shards} shards"
            );
        }
    }

    #[test]
    fn lookahead_actually_batches_multiple_timestamps() {
        // Sanity that the Paced fixture exercises windows wider than
        // one timestamp (otherwise the test above proves nothing new):
        // profile the run and check a window batched events from more
        // than one instant — max batch > max events at any timestamp.
        obs::profile::set_enabled(true);
        obs::profile::take_runs();
        let mut sh = paced_ring(7);
        seed_paced(&mut sh);
        // 5 shards: no other test in this binary runs sharded at 5, so
        // the profile below is unambiguous even if tests race on the
        // global profile store while profiling is enabled.
        sh.run_sharded(5, RunLimits::default());
        obs::profile::set_enabled(false);
        let runs = obs::profile::take_runs();
        let prof = runs
            .iter()
            .find(|p| p.engine == "sharded" && p.threads == 5)
            .expect("profile");
        assert!(prof.fences >= 2, "reset + session_down fence: {prof:?}");
        assert!(
            prof.epochs < prof.events - prof.fences,
            "windows never batched: {prof:?}"
        );
    }
}
