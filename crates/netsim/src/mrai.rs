//! Per-peer MRAI (Minimum Route Advertisement Interval) pacing.
//!
//! RFC 4271 §9.2.1.1: a speaker must not send successive UPDATEs for a
//! common set of destinations to a given peer faster than the MRAI. The
//! paper's convergence argument (§3.5) is that ABRR cuts the number of
//! iBGP hops between border routers from three to two, so fewer MRAI
//! delays accumulate along the propagation path.
//!
//! [`Mrai`] is a small state machine used per (peer) by the protocol
//! engines: updates offered while the peer is "ready" pass through
//! immediately (and start the interval); updates offered during the
//! interval are buffered per key, with later offers for the same key
//! replacing earlier ones (implicit-withdraw coalescing); a flush timer
//! drains the buffer when the interval expires.

use crate::sim::Time;
use std::collections::BTreeMap;

/// What the caller should do with an offered update.
#[derive(Debug, PartialEq, Eq)]
pub enum MraiVerdict<M> {
    /// Send this message immediately; the interval has (re)started.
    SendNow(M),
    /// Buffered. If `need_timer` the caller must schedule a flush timer
    /// at `flush_at` (otherwise one is already pending).
    Deferred {
        /// When the pending buffer becomes sendable.
        flush_at: Time,
        /// Whether the caller must schedule the flush timer.
        need_timer: bool,
    },
}

/// Per-peer MRAI pacing state, generic over the update key (per RFC the
/// "common set of destinations" — the engines key by prefix) and the
/// buffered message payload.
#[derive(Clone, Debug)]
pub struct Mrai<K: Ord, M> {
    interval: Time,
    ready_at: Time,
    pending: BTreeMap<K, M>,
    timer_pending: bool,
}

impl<K: Ord, M> Mrai<K, M> {
    /// Creates a pacer with the given interval. Zero disables pacing.
    pub fn new(interval: Time) -> Self {
        Mrai {
            interval,
            ready_at: 0,
            pending: BTreeMap::new(),
            timer_pending: false,
        }
    }

    /// The configured interval.
    pub fn interval(&self) -> Time {
        self.interval
    }

    /// Offers an update keyed by `key` at time `now`.
    ///
    /// Returns [`MraiVerdict::SendNow`] handing the message back for
    /// immediate transmission, or [`MraiVerdict::Deferred`] when it was
    /// buffered.
    ///
    /// Note: once any update is deferred, later updates for *other* keys
    /// are also deferred until the flush, preserving inter-prefix
    /// ordering to a peer.
    pub fn offer(&mut self, now: Time, key: K, msg: M) -> MraiVerdict<M> {
        if self.interval == 0 || (now >= self.ready_at && self.pending.is_empty()) {
            self.ready_at = now + self.interval;
            return MraiVerdict::SendNow(msg);
        }
        self.pending.insert(key, msg);
        let need_timer = !self.timer_pending;
        self.timer_pending = true;
        MraiVerdict::Deferred {
            flush_at: self.ready_at,
            need_timer,
        }
    }

    /// Drains the pending buffer at flush time. The caller transmits the
    /// returned updates (in key order). Restarts the interval if
    /// anything was sent.
    pub fn flush(&mut self, now: Time) -> Vec<(K, M)> {
        self.timer_pending = false;
        if self.pending.is_empty() {
            return Vec::new();
        }
        self.ready_at = now + self.interval;
        std::mem::take(&mut self.pending).into_iter().collect()
    }

    /// Number of buffered updates.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Whether a flush timer is outstanding.
    pub fn timer_pending(&self) -> bool {
        self.timer_pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_interval_always_sends() {
        let mut m: Mrai<u32, &str> = Mrai::new(0);
        for i in 0..10 {
            assert_eq!(m.offer(i, i as u32, "x"), MraiVerdict::SendNow("x"));
        }
        assert_eq!(m.pending_len(), 0);
    }

    #[test]
    fn first_send_immediate_then_deferred() {
        let mut m: Mrai<u32, &str> = Mrai::new(100);
        assert_eq!(m.offer(0, 1, "a"), MraiVerdict::SendNow("a"));
        assert_eq!(
            m.offer(10, 2, "b"),
            MraiVerdict::Deferred {
                flush_at: 100,
                need_timer: true
            }
        );
        assert_eq!(
            m.offer(20, 3, "c"),
            MraiVerdict::Deferred {
                flush_at: 100,
                need_timer: false
            }
        );
        let flushed = m.flush(100);
        assert_eq!(flushed, vec![(2, "b"), (3, "c")]);
        // Interval restarted at flush: next offer is deferred again.
        assert!(matches!(m.offer(150, 4, "d"), MraiVerdict::Deferred { .. }));
        // After the new interval expires with an empty buffer...
        let flushed = m.flush(200);
        assert_eq!(flushed, vec![(4, "d")]);
        assert_eq!(m.offer(301, 5, "e"), MraiVerdict::SendNow("e"));
    }

    #[test]
    fn implicit_withdraw_coalescing() {
        let mut m: Mrai<u32, u32> = Mrai::new(100);
        assert_eq!(m.offer(0, 9, 1), MraiVerdict::SendNow(1));
        // Three successive updates for the same prefix: only the last
        // survives the interval.
        m.offer(1, 7, 10);
        m.offer(2, 7, 20);
        m.offer(3, 7, 30);
        assert_eq!(m.pending_len(), 1);
        assert_eq!(m.flush(100), vec![(7, 30)]);
    }

    #[test]
    fn flush_with_empty_buffer_is_noop() {
        let mut m: Mrai<u32, &str> = Mrai::new(100);
        assert!(m.flush(50).is_empty());
        // ready_at must not have been advanced by the empty flush.
        assert_eq!(m.offer(0, 1, "a"), MraiVerdict::SendNow("a"));
    }

    #[test]
    fn ordering_preserved_once_blocked() {
        // If prefix A is deferred, a later update for prefix B must not
        // jump the queue (it would reorder the stream to the peer).
        let mut m: Mrai<u32, &str> = Mrai::new(100);
        assert_eq!(m.offer(0, 1, "first"), MraiVerdict::SendNow("first"));
        m.offer(10, 2, "blocked");
        // Interval conceptually over for... no: ready_at=100, still blocked.
        assert!(matches!(
            m.offer(50, 3, "later"),
            MraiVerdict::Deferred { .. }
        ));
        assert_eq!(m.flush(100).len(), 2);
    }
}
