//! Deterministic parallel execution of the event loop.
//!
//! [`Sim::run_parallel`] drains the event queue one *epoch* at a time:
//! the maximal run of same-timestamp events at the head of the queue
//! whose handlers are pure per-node callbacks (message deliveries,
//! timers, external injections). Events of one epoch are partitioned by
//! target node and the per-node groups run concurrently on a worker
//! pool; the emitted actions are then merged back **in the exact order
//! the sequential engine would have produced them**, so every
//! observable output — counters, RIB contents, fingerprints, audit
//! results — is bit-identical to [`Sim::run`].
//!
//! # Why this is safe (the determinism argument)
//!
//! Within one simulated timestamp `t`, consider the pure events
//! `e_1 < e_2 < … < e_k` (ordered by sequence id, exactly how the
//! sequential loop processes them). Three facts make their callbacks
//! order-independent:
//!
//! 1. **Callbacks only touch their own node.** A `Protocol` callback
//!    receives `&mut self` and a [`Ctx`] that *collects* actions; it
//!    cannot read or write another node, the session table, the event
//!    queue, or the counters.
//! 2. **Action application is deferred.** In the sequential engine the
//!    actions of `e_i` are applied before `e_{i+1}` runs — but those
//!    applications only mutate state no later callback at `t` can
//!    observe: the heap (new events are at `t + latency`, or behind
//!    every already-queued event at `t` in id order when latency is 0),
//!    the `transmitted`/`dropped` counters, and the sequence counter.
//! 3. **Same-node events stay ordered.** Events targeting one node are
//!    handled by one worker task in ascending id order, preserving the
//!    per-session FIFO and timer ordering the sequential engine
//!    guarantees.
//!
//! Therefore running `e_1 … e_k` concurrently (grouped by node) and
//! then applying their collected actions in ascending event order is
//! *literally the same state transition* as the sequential loop: every
//! `push` happens with the same `(time, id)` pair, every counter gets
//! the same increments. Global events (session up/down, node crash and
//! restart) mutate shared state — the session table and `down` set — so
//! they terminate the epoch and run sequentially through the exact
//! code path [`Sim::run`] uses.
//!
//! A note on lookahead: classic conservative parallel DES widens the
//! window to `t + L` (L = minimum session latency) to batch more work.
//! Here deliveries already cluster at identical timestamps — a peer
//! group fan-out shares one send time and one latency — so the
//! same-timestamp epoch captures the available parallelism while
//! keeping the equivalence proof above two paragraphs instead of two
//! pages, and bit-identical by construction.

use crate::sim::{Action, Ctx, Event, Protocol, RunLimits, RunOutcome, Sim, Time};
use bgp_types::RouterId;
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Mutex;

/// One event routed to a node within an epoch (or, for the sharded
/// engine in [`crate::sharded`], within a window).
pub(crate) enum NodeEvent<P: Protocol> {
    Msg { from: RouterId, msg: P::Msg },
    Timer { token: u64 },
    External { ev: P::External },
}

/// The unit of work handed to a worker: one node plus all of its events
/// in this epoch, in ascending event order. `pos` values index into the
/// epoch's batch so the merge can restore global order; `id` is the
/// heap entry's sequence id, used to stamp the trace dispatch context
/// with the same `(time, id)` pair the sequential engine would.
struct EpochTask<P: Protocol> {
    slot: usize,
    node_id: RouterId,
    node: P,
    events: Vec<(u32, u64, NodeEvent<P>)>,
}

/// What a worker returns: the node (moved back), the actions of all its
/// callbacks in one flat buffer (a single allocation per task instead
/// of one per callback), and per-event `(pos, action count)` bounds.
struct EpochResult<P: Protocol> {
    slot: usize,
    node_id: RouterId,
    node: P,
    actions: Vec<Action<P::Msg>>,
    bounds: Vec<(u32, u32)>,
}

fn execute_task<P: Protocol>(now: Time, task: EpochTask<P>) -> EpochResult<P> {
    let task_start = obs::profile::enabled().then(std::time::Instant::now);
    let EpochTask {
        slot,
        node_id,
        mut node,
        events,
    } = task;
    let mut actions: Vec<Action<P::Msg>> = Vec::new();
    let mut bounds = Vec::with_capacity(events.len());
    for (pos, id, ev) in events {
        let start = actions.len();
        // Same (time, id) stamp the sequential engine uses for this
        // event, so traces emitted by the callback merge identically.
        obs::trace::set_dispatch(now, id);
        let mut ctx = Ctx::for_worker(now, node_id, actions);
        match ev {
            NodeEvent::Msg { from, msg } => node.on_message(&mut ctx, from, msg),
            NodeEvent::Timer { token } => node.on_timer(&mut ctx, token),
            NodeEvent::External { ev } => node.on_external(&mut ctx, ev),
        }
        actions = ctx.into_actions();
        bounds.push((pos, (actions.len() - start) as u32));
    }
    if let Some(t0) = task_start {
        obs::profile::add_task_ns(t0.elapsed().as_nanos() as u64);
    }
    EpochResult {
        slot,
        node_id,
        node,
        actions,
        bounds,
    }
}

pub(crate) fn is_global<P: Protocol>(ev: &Event<P>) -> bool {
    matches!(
        ev,
        Event::SessionDown { .. }
            | Event::SessionUp { .. }
            | Event::NodeDown { .. }
            | Event::NodeUp { .. }
    )
}

impl<P: Protocol> Sim<P> {
    /// Runs the event loop on `threads` worker threads, producing
    /// results bit-identical to [`Sim::run`] with the same limits.
    ///
    /// `threads <= 1` runs the sequential loop directly: one worker
    /// gains nothing from the epoch/merge machinery (it measured ~25%
    /// slower for identical results), and `Sim::run` stamps the same
    /// per-event dispatch ids, so obs traces stay byte-identical.
    pub fn run_parallel(&mut self, threads: usize, limits: RunLimits) -> RunOutcome
    where
        P: Send,
        P::Msg: Send,
        P::External: Send,
    {
        if threads <= 1 {
            return self.run(limits);
        }
        let (task_tx, task_rx) = mpsc::channel::<(Time, EpochTask<P>)>();
        let task_rx = Mutex::new(task_rx);
        let (res_tx, res_rx) = mpsc::channel::<EpochResult<P>>();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let res_tx = res_tx.clone();
                let task_rx = &task_rx;
                s.spawn(move || {
                    loop {
                        let msg = task_rx.lock().expect("task queue poisoned").recv();
                        match msg {
                            Ok((now, task)) => {
                                if res_tx.send(execute_task(now, task)).is_err() {
                                    break;
                                }
                            }
                            Err(_) => break,
                        }
                    }
                    // Flush buffered trace events inside the closure:
                    // the thread-local drop-flush can run after the
                    // scope join observes this worker as finished,
                    // which would race a drain on the main thread.
                    obs::trace::flush_local();
                });
            }
            let outcome = self.run_epochs(threads, limits, &mut |now, tasks| {
                let k = tasks.len();
                for t in tasks {
                    task_tx.send((now, t)).expect("worker pool hung up");
                }
                (0..k)
                    .map(|_| res_rx.recv().expect("worker panicked"))
                    .collect()
            });
            // Hang up so the workers' recv() errors and they exit.
            drop(task_tx);
            outcome
        })
    }

    /// Convenience: [`Sim::run_parallel`] with default limits.
    pub fn run_parallel_to_quiescence(&mut self, threads: usize) -> RunOutcome
    where
        P: Send,
        P::Msg: Send,
        P::External: Send,
    {
        self.run_parallel(threads, RunLimits::default())
    }

    /// The epoch loop shared by the inline and pooled executors.
    /// `exec` runs a set of tasks at simulated time `now` and returns
    /// their results in any order.
    fn run_epochs(
        &mut self,
        threads: usize,
        limits: RunLimits,
        exec: &mut dyn FnMut(Time, Vec<EpochTask<P>>) -> Vec<EpochResult<P>>,
    ) -> RunOutcome {
        let profiling = obs::profile::enabled();
        let run_start = profiling.then(std::time::Instant::now);
        if profiling {
            obs::profile::run_started();
        }
        obs::trace::new_run();
        self.start();
        let mut events = 0u64;
        let mut epochs = 0u64;
        let mut max_queue = 0usize;
        let mut max_epoch_batch = 0usize;
        let quiesced = 'run: loop {
            let Some(head) = self.heap.peek() else {
                break 'run true;
            };
            let at = head.at;
            if events >= limits.max_events || at > limits.max_time {
                break 'run false;
            }
            if profiling {
                max_queue = max_queue.max(self.heap.len());
            }
            if is_global(&head.ev) {
                // Shared-state mutation: run one event sequentially on
                // the same path as `Sim::run`.
                let entry = self.heap.pop().expect("peeked entry vanished");
                self.now = at;
                events += 1;
                obs::trace::set_dispatch(at, entry.id);
                self.dispatch_event(entry.ev);
                continue;
            }
            // Collect the maximal pure prefix at this timestamp,
            // replicating the sequential engine's per-event drop
            // bookkeeping (drops count as processed events).
            self.now = at;
            let mut batch: Vec<(RouterId, u64, NodeEvent<P>)> = Vec::new();
            while let Some(head) = self.heap.peek() {
                if head.at != at || is_global(&head.ev) || events >= limits.max_events {
                    break;
                }
                let entry = self.heap.pop().expect("peeked entry vanished");
                events += 1;
                match entry.ev {
                    Event::Deliver { from, to, msg } => {
                        if self.down.contains(&to) {
                            self.dropped += 1;
                            continue;
                        }
                        if let Some(stats) = self.stats.get_mut(&to) {
                            stats.received += 1;
                        }
                        batch.push((to, entry.id, NodeEvent::Msg { from, msg }));
                    }
                    Event::Timer { node, token } => {
                        if self.down.contains(&node) {
                            continue;
                        }
                        batch.push((node, entry.id, NodeEvent::Timer { token }));
                    }
                    Event::External { node, ev } => {
                        if self.down.contains(&node) {
                            self.dropped += 1;
                            continue;
                        }
                        batch.push((node, entry.id, NodeEvent::External { ev }));
                    }
                    _ => unreachable!("global event in pure prefix"),
                }
            }
            let n = batch.len();
            if n == 0 {
                continue;
            }
            // Partition by node, preserving ascending event order
            // within each task.
            let mut slot_of: BTreeMap<RouterId, usize> = BTreeMap::new();
            let mut tasks: Vec<EpochTask<P>> = Vec::new();
            for (pos, (node_id, id, ev)) in batch.into_iter().enumerate() {
                let slot = match slot_of.get(&node_id) {
                    Some(&s) => s,
                    None => {
                        // A node can be absent only if a callback host
                        // was never registered; mirror `with_node`'s
                        // silent no-op in that case.
                        let Some(node) = self.nodes.remove(&node_id) else {
                            continue;
                        };
                        let s = tasks.len();
                        tasks.push(EpochTask {
                            slot: s,
                            node_id,
                            node,
                            events: Vec::new(),
                        });
                        slot_of.insert(node_id, s);
                        s
                    }
                };
                tasks[slot].events.push((pos as u32, id, ev));
            }
            if profiling {
                epochs += 1;
                max_epoch_batch = max_epoch_batch.max(n);
            }
            let k = tasks.len();
            let results = exec(at, tasks);
            assert_eq!(results.len(), k, "worker result missing");
            // Re-key results by slot, hand the nodes back, and build
            // the pos -> (slot, action count) index for the merge.
            let mut per_pos: Vec<(u32, u32)> = vec![(0, 0); n];
            let mut iters: Vec<Option<std::vec::IntoIter<Action<P::Msg>>>> =
                (0..k).map(|_| None).collect();
            let mut from_of: Vec<RouterId> = vec![RouterId(0); k];
            for r in results {
                for &(pos, count) in &r.bounds {
                    per_pos[pos as usize] = (r.slot as u32 + 1, count);
                }
                self.nodes.insert(r.node_id, r.node);
                from_of[r.slot] = r.node_id;
                iters[r.slot] = Some(r.actions.into_iter());
            }
            // Merge: apply every callback's actions in ascending event
            // order — the exact interleaving of the sequential loop, so
            // sequence ids (and hence all future tie-breaks) match.
            for &(slot1, count) in per_pos.iter() {
                if slot1 == 0 {
                    continue;
                }
                let slot = (slot1 - 1) as usize;
                let from = from_of[slot];
                let it = iters[slot].as_mut().expect("result slot unfilled");
                for _ in 0..count {
                    let action = it.next().expect("action bounds out of sync");
                    self.apply_action(from, action);
                }
            }
        };
        obs::trace::clear_dispatch();
        self.record_run_metrics(events);
        if let Some(t0) = run_start {
            obs::profile::run_finished(obs::profile::RunProfile {
                engine: "par",
                threads,
                wall_ns: t0.elapsed().as_nanos() as u64,
                events,
                epochs,
                fences: 0,
                max_queue,
                max_epoch_batch,
                task_ns: 0,
            });
        }
        RunOutcome {
            quiesced,
            events,
            end_time: self.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::NodeStats;

    /// Echoes every received number minus one back to the sender; used
    /// to generate deep same-timestamp fan-out across many nodes.
    struct Gossip {
        peers: Vec<RouterId>,
        sum: u64,
        log: Vec<(RouterId, u32)>,
    }

    impl Protocol for Gossip {
        type Msg = u32;
        type External = u32;

        fn on_message(&mut self, ctx: &mut Ctx<u32>, from: RouterId, msg: u32) {
            self.sum += msg as u64;
            self.log.push((from, msg));
            if msg > 0 {
                for &p in &self.peers {
                    ctx.send(p, msg - 1);
                }
            }
        }

        fn on_external(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
            if ev >= 100 {
                // Start a same-instant self-timer cascade of length
                // `ev - 100`.
                ctx.set_timer(ctx.now(), (ev - 100) as u64);
                return;
            }
            for &p in &self.peers {
                ctx.send(p, ev);
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<u32>, token: u64) {
            self.sum += token;
            // Same-timestamp self-timer chain exercises intra-epoch
            // event creation.
            if token > 0 {
                ctx.set_timer(ctx.now(), token - 1);
            }
        }

        fn on_session_down(&mut self, _ctx: &mut Ctx<u32>, peer: RouterId) {
            self.log.push((peer, u32::MAX));
        }

        fn on_session_up(&mut self, _ctx: &mut Ctx<u32>, peer: RouterId) {
            self.log.push((peer, u32::MAX - 1));
        }

        fn on_restart(&mut self, _ctx: &mut Ctx<u32>) {
            self.sum = 0;
            self.log.clear();
        }
    }

    fn ring(n: u32, latency_of: impl Fn(u32) -> Time) -> Sim<Gossip> {
        let mut sim = Sim::new();
        for i in 0..n {
            let peers = vec![RouterId((i + 1) % n), RouterId((i + n - 1) % n)];
            sim.add_node(
                RouterId(i),
                Gossip {
                    peers,
                    sum: 0,
                    log: vec![],
                },
            );
        }
        for i in 0..n {
            let j = (i + 1) % n;
            sim.add_session(RouterId(i), RouterId(j), latency_of(i));
        }
        sim
    }

    type Fingerprint = (Vec<(RouterId, u64, Vec<(RouterId, u32)>)>, u64, Time);

    fn fingerprint(sim: &Sim<Gossip>) -> Fingerprint {
        let nodes = sim
            .nodes()
            .map(|(id, g)| (id, g.sum, g.log.clone()))
            .collect();
        (nodes, sim.dropped_messages(), sim.now())
    }

    fn stats_of(sim: &Sim<Gossip>) -> Vec<(RouterId, NodeStats)> {
        sim.nodes().map(|(id, _)| (id, sim.stats(id))).collect()
    }

    fn seed(sim: &mut Sim<Gossip>) {
        sim.schedule_external(0, RouterId(0), 6);
        sim.schedule_external(0, RouterId(3), 6);
        sim.schedule_external(5, RouterId(1), 4);
        // Faults mid-run: global events must interleave correctly.
        sim.schedule_session_down(20, RouterId(0), RouterId(1));
        sim.schedule_node_down(40, RouterId(2));
        sim.schedule_node_up(60, RouterId(2));
        sim.schedule_session_up(70, RouterId(0), RouterId(1), 10);
        sim.schedule_external(80, RouterId(0), 3);
    }

    #[test]
    fn parallel_matches_sequential_uniform_latency() {
        // Uniform latency: large same-timestamp epochs.
        let mut seq = ring(8, |_| 10);
        seed(&mut seq);
        let out_seq = seq.run_to_quiescence();

        for threads in [1, 2, 8] {
            let mut par = ring(8, |_| 10);
            seed(&mut par);
            let out_par = par.run_parallel(threads, RunLimits::default());
            assert_eq!(out_seq, out_par, "outcome differs at {threads} threads");
            assert_eq!(
                fingerprint(&seq),
                fingerprint(&par),
                "state differs at {threads} threads"
            );
            assert_eq!(stats_of(&seq), stats_of(&par));
        }
    }

    #[test]
    fn parallel_matches_sequential_skewed_latency() {
        // Distinct latencies: epochs shrink to single events — the
        // degenerate case must still match exactly.
        let mut seq = ring(8, |i| 7 + 13 * (i as Time));
        seed(&mut seq);
        seq.run_to_quiescence();

        let mut par = ring(8, |i| 7 + 13 * (i as Time));
        seed(&mut par);
        par.run_parallel(4, RunLimits::default());
        assert_eq!(fingerprint(&seq), fingerprint(&par));
        assert_eq!(stats_of(&seq), stats_of(&par));
    }

    #[test]
    fn parallel_respects_event_limit_identically() {
        let limits = RunLimits {
            max_events: 37,
            max_time: Time::MAX,
        };
        let mut seq = ring(6, |_| 5);
        seed(&mut seq);
        let out_seq = seq.run(limits);
        assert!(!out_seq.quiesced);

        let mut par = ring(6, |_| 5);
        seed(&mut par);
        let out_par = par.run_parallel(3, limits);
        assert_eq!(out_seq, out_par);
        assert_eq!(fingerprint(&seq), fingerprint(&par));
    }

    #[test]
    fn parallel_respects_time_limit_identically() {
        let limits = RunLimits {
            max_events: u64::MAX,
            max_time: 45,
        };
        let mut seq = ring(6, |_| 5);
        seed(&mut seq);
        let out_seq = seq.run(limits);

        let mut par = ring(6, |_| 5);
        seed(&mut par);
        let out_par = par.run_parallel(3, limits);
        assert_eq!(out_seq, out_par);
        assert_eq!(fingerprint(&seq), fingerprint(&par));
    }

    #[test]
    fn same_timestamp_timer_chains_match() {
        // Self-timer cascades at a single instant interleaved with
        // message traffic: events created *during* an epoch's merge
        // must be drained at the same timestamp in id order.
        let seed_timers = |sim: &mut Sim<Gossip>| {
            sim.schedule_external(0, RouterId(0), 2);
            sim.schedule_external(10, RouterId(1), 105); // cascade of 5 at t=10
            sim.schedule_external(10, RouterId(2), 103); // cascade of 3 at t=10
            sim.schedule_external(15, RouterId(1), 0);
        };
        let mut seq = ring(4, |_| 10);
        seed_timers(&mut seq);
        seq.run_to_quiescence();
        assert!(seq.node(RouterId(1)).sum >= 15);

        let mut par = ring(4, |_| 10);
        seed_timers(&mut par);
        par.run_parallel(8, RunLimits::default());
        assert_eq!(fingerprint(&seq), fingerprint(&par));
    }

    #[test]
    fn run_can_continue_after_run_parallel() {
        // The engines share all state; interleaving them mid-stream
        // must behave like one continuous run.
        let mut a = ring(8, |_| 10);
        seed(&mut a);
        a.run_to_quiescence();

        let mut b = ring(8, |_| 10);
        seed(&mut b);
        let limits = RunLimits {
            max_events: 25,
            max_time: Time::MAX,
        };
        b.run_parallel(4, limits);
        b.run_to_quiescence();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}
