//! The event loop, sessions, timers, and per-node statistics.

use bgp_types::RouterId;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Simulated time in microseconds.
pub type Time = u64;

/// How the sharded engine ([`Sim::run_sharded`]) treats an external
/// event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExternalClass {
    /// Prefix-plane work (route feeds, withdrawals, local origination):
    /// a pure per-node callback the engine batches into windows. The
    /// hint steers the event's node task to a shard worker — events
    /// sharing a hint (e.g. an Address Partition id) land on the same
    /// worker. Hints are a locality lever, never a correctness one.
    Prefix {
        /// Shard-affinity hint (e.g. the AP id covering the prefix).
        shard_hint: u64,
    },
    /// Session-plane work (session resets, role reassignment,
    /// transition cutovers): acts as a synchronization fence — every
    /// in-flight window drains, then the event runs on the sequential
    /// dispatch path before the next window opens.
    Fence,
}

/// Selects one of the execution engines sharing a [`Sim`]'s state. All
/// three produce bit-identical outcomes, traces, and fingerprints; they
/// differ only in how work is scheduled onto OS threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// The sequential oracle loop ([`Sim::run`]).
    Seq,
    /// Conservative per-timestamp epochs on N workers
    /// ([`Sim::run_parallel`]).
    Epoch(usize),
    /// AP-sharded multi-timestamp windows with session-boundary fences
    /// on N shard workers ([`Sim::run_sharded`]).
    Sharded(usize),
}

impl Engine {
    /// The historical `--threads` convention: 0 selects the sequential
    /// engine, N >= 1 the epoch-parallel engine on N workers.
    pub fn from_threads(threads: usize) -> Engine {
        if threads == 0 {
            Engine::Seq
        } else {
            Engine::Epoch(threads)
        }
    }

    /// Stable engine name (`"seq"`, `"epoch"`, `"sharded"`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Seq => "seq",
            Engine::Epoch(_) => "epoch",
            Engine::Sharded(_) => "sharded",
        }
    }

    /// Worker count (0 for the sequential engine).
    pub fn workers(self) -> usize {
        match self {
            Engine::Seq => 0,
            Engine::Epoch(n) | Engine::Sharded(n) => n,
        }
    }
}

/// A protocol state machine hosted on a simulator node.
///
/// Callbacks receive a [`Ctx`] through which the node sends messages and
/// sets timers; effects are applied by the simulator after the callback
/// returns, keeping the event loop single-owner and deterministic.
pub trait Protocol {
    /// Messages exchanged between nodes over sessions.
    type Msg: Clone;
    /// Events injected from outside the simulated AS (eBGP feeds,
    /// configuration changes).
    type External;

    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Ctx<Self::Msg>) {}
    /// A message arrived from `from` on an established session.
    fn on_message(&mut self, ctx: &mut Ctx<Self::Msg>, from: RouterId, msg: Self::Msg);
    /// An external event was injected into this node.
    fn on_external(&mut self, ctx: &mut Ctx<Self::Msg>, ev: Self::External);
    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<Self::Msg>, _token: u64) {}
    /// The session to `peer` went down (scheduled failure or the peer
    /// crashed). Fired exactly once per surviving endpoint, after
    /// in-flight messages on the session have been discarded.
    fn on_session_down(&mut self, _ctx: &mut Ctx<Self::Msg>, _peer: RouterId) {}
    /// A session to `peer` (re-)established via
    /// [`Sim::schedule_session_up`]. Fired once per endpoint.
    fn on_session_up(&mut self, _ctx: &mut Ctx<Self::Msg>, _peer: RouterId) {}
    /// This node restarted after a crash. All soft state (RIBs learned
    /// over sessions, timers) was lost with the crash; the protocol
    /// must reset itself here. Sessions are *not* restored
    /// automatically — re-establishment arrives later as
    /// `on_session_up` callbacks.
    fn on_restart(&mut self, _ctx: &mut Ctx<Self::Msg>) {}

    /// Classifies an external event about to be injected into this node
    /// for the sharded engine ([`Sim::run_sharded`]): prefix-plane
    /// events batch freely inside a window; session-plane events fence.
    /// The default treats every external as prefix-plane work with a
    /// neutral shard hint — correct for any protocol, since fencing is
    /// only *required* for events whose handler rewrites cross-prefix
    /// routing structure (see `crate::sharded`).
    fn classify_external(&self, _ev: &Self::External) -> ExternalClass {
        ExternalClass::Prefix { shard_hint: 0 }
    }

    /// Shard-affinity hint for a message about to be delivered to this
    /// node (e.g. the Address Partition its prefix belongs to). Events
    /// sharing a hint are routed to the same shard worker for locality;
    /// the hint never affects results. Default: everything on hint 0.
    fn msg_shard(&self, _msg: &Self::Msg) -> u64 {
        0
    }

    /// Lower bound on how far in the future this node's callbacks set
    /// timers: returning `d` promises that every `Ctx::set_timer(at, _)`
    /// issued from a callback running at time `t` has `at >= t + d`,
    /// for the whole lifetime of the node. The sharded engine uses the
    /// promise (with session latencies) to widen its lookahead windows
    /// past single timestamps. The default, 0, promises nothing —
    /// windows then degenerate to per-timestamp epochs, which is always
    /// sound. Return [`Time::MAX`] if the node never sets timers.
    fn timer_lead(&self) -> Time {
        0
    }
}

/// Side-effect collector handed to protocol callbacks.
pub struct Ctx<M> {
    now: Time,
    node: RouterId,
    actions: Vec<Action<M>>,
}

pub(crate) enum Action<M> {
    Send { to: RouterId, msg: M },
    SetTimer { at: Time, token: u64 },
}

impl<M> Ctx<M> {
    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id of the node this callback runs on.
    pub fn me(&self) -> RouterId {
        self.node
    }

    /// Sends `msg` to `to`. A session between the two nodes must exist
    /// by delivery time; sends without a session are dropped and counted
    /// in [`Sim::dropped_messages`].
    pub fn send(&mut self, to: RouterId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Schedules `on_timer(token)` at absolute time `at` (clamped to be
    /// at least now).
    pub fn set_timer(&mut self, at: Time, token: u64) {
        self.actions.push(Action::SetTimer { at, token });
    }

    /// Builds a context for a parallel-epoch worker, reusing `actions`
    /// as the collection buffer.
    pub(crate) fn for_worker(now: Time, node: RouterId, actions: Vec<Action<M>>) -> Self {
        Ctx { now, node, actions }
    }

    /// Consumes the context, returning the collected actions.
    pub(crate) fn into_actions(self) -> Vec<Action<M>> {
        self.actions
    }
}

pub(crate) enum Event<P: Protocol> {
    Deliver {
        from: RouterId,
        to: RouterId,
        msg: P::Msg,
    },
    Timer {
        node: RouterId,
        token: u64,
    },
    External {
        node: RouterId,
        ev: P::External,
    },
    SessionDown {
        a: RouterId,
        b: RouterId,
    },
    SessionUp {
        a: RouterId,
        b: RouterId,
        latency: Time,
    },
    NodeDown {
        node: RouterId,
    },
    NodeUp {
        node: RouterId,
    },
}

/// Per-node message counters.
///
/// `transmitted` counts messages put on the wire by the node;
/// `received` counts messages delivered to it. "Generated" updates (the
/// expensive RIB-Out recomputations, paper §4.2) are an engine-level
/// concept counted by the protocol implementation itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Messages sent by this node.
    pub transmitted: u64,
    /// Messages delivered to this node.
    pub received: u64,
}

/// Limits for a [`Sim::run`] call.
#[derive(Clone, Copy, Debug)]
pub struct RunLimits {
    /// Stop after this many events (oscillation guard).
    pub max_events: u64,
    /// Stop once simulated time exceeds this.
    pub max_time: Time,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_events: 10_000_000,
            max_time: Time::MAX,
        }
    }
}

/// The result of a [`Sim::run`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// True when the event queue drained — the network converged. False
    /// means a limit was hit first; with sensible limits this is the
    /// oscillation signal used by the correctness experiments.
    pub quiesced: bool,
    /// Events processed during this call.
    pub events: u64,
    /// Simulated time when the call returned.
    pub end_time: Time,
}

/// A scheduled event: its firing time, a tie-breaking sequence id, and
/// the payload carried inline. Earlier `(at, id)` pairs order first, so
/// the `BinaryHeap` (a max-heap) gets a reversed comparison.
///
/// Carrying the payload in the heap entry (instead of a side
/// `BTreeMap<u64, Event>` keyed by id) saves an ordered-map insert and
/// remove per event — a measurable share of the event-loop cost at
/// Tier-1 churn volumes.
pub(crate) struct Entry<P: Protocol> {
    pub(crate) at: Time,
    pub(crate) id: u64,
    pub(crate) ev: Event<P>,
}

impl<P: Protocol> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}

impl<P: Protocol> Eq for Entry<P> {}

impl<P: Protocol> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P: Protocol> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the max-heap pops the earliest (at, id) first.
        other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
    }
}

/// The simulator: nodes, sessions, and the event heap.
pub struct Sim<P: Protocol> {
    pub(crate) nodes: BTreeMap<RouterId, P>,
    pub(crate) sessions: BTreeMap<(RouterId, RouterId), Time>,
    pub(crate) heap: BinaryHeap<Entry<P>>,
    pub(crate) seq: u64,
    pub(crate) now: Time,
    pub(crate) stats: BTreeMap<RouterId, NodeStats>,
    pub(crate) dropped: u64,
    pub(crate) started: bool,
    pub(crate) down: BTreeSet<RouterId>,
    /// Pooled action buffer reused across sequential callbacks so the
    /// event loop does not allocate a fresh `Vec` per callback.
    action_buf: Vec<Action<P::Msg>>,
}

impl<P: Protocol> Default for Sim<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Protocol> Sim<P> {
    /// Creates an empty simulator at time 0.
    pub fn new() -> Self {
        Sim {
            nodes: BTreeMap::new(),
            sessions: BTreeMap::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            stats: BTreeMap::new(),
            dropped: 0,
            started: false,
            down: BTreeSet::new(),
            action_buf: Vec::new(),
        }
    }

    /// Adds a node. Panics on duplicate ids.
    pub fn add_node(&mut self, id: RouterId, node: P) {
        let prev = self.nodes.insert(id, node);
        assert!(prev.is_none(), "duplicate node {id:?}");
        self.stats.insert(id, NodeStats::default());
    }

    /// Establishes a bidirectional session with symmetric one-way
    /// latency. Both endpoints must already exist.
    pub fn add_session(&mut self, a: RouterId, b: RouterId, latency: Time) {
        assert!(a != b, "self-session");
        assert!(self.nodes.contains_key(&a), "unknown node {a:?}");
        assert!(self.nodes.contains_key(&b), "unknown node {b:?}");
        let key = if a < b { (a, b) } else { (b, a) };
        self.sessions.insert(key, latency);
    }

    /// Removes a session (session failure). In-flight messages on the
    /// session are discarded — TCP delivers nothing across a torn-down
    /// connection — and counted in [`Sim::dropped_messages`]. Protocol
    /// hooks do **not** fire; use [`Sim::schedule_session_down`] for a
    /// failure the endpoints react to.
    pub fn remove_session(&mut self, a: RouterId, b: RouterId) {
        let key = if a < b { (a, b) } else { (b, a) };
        if self.sessions.remove(&key).is_some() {
            self.drop_in_flight(a, b);
        }
    }

    /// Discards queued `Deliver` events between `a` and `b` (either
    /// direction), counting them as dropped.
    fn drop_in_flight(&mut self, a: RouterId, b: RouterId) {
        let mut dropped = 0u64;
        self.heap.retain(|e| match &e.ev {
            Event::Deliver { from, to, .. }
                if (*from == a && *to == b) || (*from == b && *to == a) =>
            {
                dropped += 1;
                false
            }
            _ => true,
        });
        self.dropped += dropped;
    }

    /// Discards queued events involving `node`: deliveries to or from
    /// it (in-flight on the wire) and its timers (state lost in the
    /// crash). External events survive — the outside feed does not die
    /// with the router.
    fn drop_node_events(&mut self, node: RouterId) {
        let mut dropped = 0u64;
        self.heap.retain(|e| match &e.ev {
            Event::Deliver { from, to, .. } if *from == node || *to == node => {
                dropped += 1;
                false
            }
            Event::Timer { node: n, .. } if *n == node => false,
            _ => true,
        });
        self.dropped += dropped;
    }

    /// Whether a session between `a` and `b` exists.
    pub fn has_session(&self, a: RouterId, b: RouterId) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        self.sessions.contains_key(&key)
    }

    /// Number of sessions.
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Iterates `((a, b), latency)` over established sessions, with
    /// `a < b`.
    pub fn sessions(&self) -> impl Iterator<Item = ((RouterId, RouterId), Time)> + '_ {
        self.sessions.iter().map(|(k, v)| (*k, *v))
    }

    /// Whether `node` is currently up (not crashed).
    pub fn is_node_up(&self, node: RouterId) -> bool {
        !self.down.contains(&node)
    }

    /// Injects an external event at absolute time `at`.
    pub fn schedule_external(&mut self, at: Time, node: RouterId, ev: P::External) {
        assert!(self.nodes.contains_key(&node), "unknown node {node:?}");
        self.push(at.max(self.now), Event::External { node, ev });
    }

    /// Schedules a session failure at `at`: in-flight messages are
    /// discarded and both surviving endpoints get `on_session_down`.
    pub fn schedule_session_down(&mut self, at: Time, a: RouterId, b: RouterId) {
        assert!(self.nodes.contains_key(&a), "unknown node {a:?}");
        assert!(self.nodes.contains_key(&b), "unknown node {b:?}");
        self.push(at.max(self.now), Event::SessionDown { a, b });
    }

    /// Schedules a session (re-)establishment at `at`: the session is
    /// added and both endpoints get `on_session_up`. Ignored if either
    /// endpoint is down at that time.
    pub fn schedule_session_up(&mut self, at: Time, a: RouterId, b: RouterId, latency: Time) {
        assert!(a != b, "self-session");
        assert!(self.nodes.contains_key(&a), "unknown node {a:?}");
        assert!(self.nodes.contains_key(&b), "unknown node {b:?}");
        self.push(at.max(self.now), Event::SessionUp { a, b, latency });
    }

    /// Schedules a router crash at `at`: every session of the node is
    /// torn down (peers get `on_session_down`), its in-flight messages
    /// and timers are discarded, and events addressed to it are dropped
    /// until a matching [`Sim::schedule_node_up`].
    pub fn schedule_node_down(&mut self, at: Time, node: RouterId) {
        assert!(self.nodes.contains_key(&node), "unknown node {node:?}");
        self.push(at.max(self.now), Event::NodeDown { node });
    }

    /// Schedules a router restart at `at`: the node comes back with
    /// `on_restart` (its protocol must reset lost state) but no
    /// sessions — schedule those separately.
    pub fn schedule_node_up(&mut self, at: Time, node: RouterId) {
        assert!(self.nodes.contains_key(&node), "unknown node {node:?}");
        self.push(at.max(self.now), Event::NodeUp { node });
    }

    fn push(&mut self, at: Time, ev: Event<P>) {
        let id = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, id, ev });
    }

    /// Calls `on_start` on every node (once).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let ids: Vec<RouterId> = self.nodes.keys().copied().collect();
        for id in ids {
            self.with_node(id, |node, ctx| node.on_start(ctx));
        }
    }

    /// Runs the event loop until quiescence or a limit.
    pub fn run(&mut self, limits: RunLimits) -> RunOutcome {
        let profiling = obs::profile::enabled();
        let run_start = profiling.then(std::time::Instant::now);
        if profiling {
            obs::profile::run_started();
        }
        obs::trace::new_run();
        self.start();
        let mut events = 0u64;
        let mut max_queue = 0usize;
        let mut quiesced = true;
        while let Some(head) = self.heap.peek() {
            let at = head.at;
            if events >= limits.max_events || at > limits.max_time {
                quiesced = false;
                break;
            }
            if profiling {
                max_queue = max_queue.max(self.heap.len());
            }
            let entry = self.heap.pop().expect("peeked entry vanished");
            self.now = at;
            events += 1;
            // Stamp the trace dispatch context with this entry's
            // (time, id) — the parallel engine stamps the same pairs,
            // which is what makes merged traces byte-identical.
            obs::trace::set_dispatch(at, entry.id);
            self.dispatch_event(entry.ev);
        }
        obs::trace::clear_dispatch();
        self.record_run_metrics(events);
        if let Some(t0) = run_start {
            obs::profile::run_finished(obs::profile::RunProfile {
                engine: "seq",
                threads: 0,
                wall_ns: t0.elapsed().as_nanos() as u64,
                events,
                max_queue,
                ..Default::default()
            });
        }
        RunOutcome {
            quiesced,
            events,
            end_time: self.now,
        }
    }

    /// Mirrors run-level totals into the metrics registry (one batched
    /// add per run — never per event). Shared by both engines.
    pub(crate) fn record_run_metrics(&self, events: u64) {
        if !obs::metrics::enabled() {
            return;
        }
        static EVENTS: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
        static DROPPED: std::sync::OnceLock<obs::Gauge> = std::sync::OnceLock::new();
        EVENTS
            .get_or_init(|| obs::metrics::counter("netsim.events", None))
            .add(events);
        DROPPED
            .get_or_init(|| obs::metrics::gauge("netsim.msg.dropped", None))
            .set(self.dropped);
    }

    /// Applies a single event at the current time. Shared by the
    /// sequential loop and (for global events) the parallel engine in
    /// [`crate::parallel`].
    pub(crate) fn dispatch_event(&mut self, ev: Event<P>) {
        match ev {
            Event::Deliver { from, to, msg } => {
                if self.down.contains(&to) {
                    self.dropped += 1;
                    return;
                }
                if let Some(stats) = self.stats.get_mut(&to) {
                    stats.received += 1;
                }
                self.with_node(to, |node, ctx| node.on_message(ctx, from, msg));
            }
            Event::Timer { node, token } => {
                if self.down.contains(&node) {
                    return;
                }
                self.with_node(node, |n, ctx| n.on_timer(ctx, token));
            }
            Event::External { node, ev } => {
                if self.down.contains(&node) {
                    self.dropped += 1;
                    return;
                }
                self.with_node(node, |n, ctx| n.on_external(ctx, ev));
            }
            Event::SessionDown { a, b } => {
                if self.has_session(a, b) {
                    obs::event!(Netsim, Info, "netsim.session_down",
                        "a" => a.0, "b" => b.0);
                    self.remove_session(a, b);
                    for (me, peer) in [(a.min(b), a.max(b)), (a.max(b), a.min(b))] {
                        if !self.down.contains(&me) {
                            self.with_node(me, |n, ctx| n.on_session_down(ctx, peer));
                        }
                    }
                }
            }
            Event::SessionUp { a, b, latency } => {
                if !self.down.contains(&a) && !self.down.contains(&b) && !self.has_session(a, b) {
                    obs::event!(Netsim, Info, "netsim.session_up",
                        "a" => a.0, "b" => b.0, "latency_us" => latency);
                    self.add_session(a, b, latency);
                    for (me, peer) in [(a.min(b), a.max(b)), (a.max(b), a.min(b))] {
                        self.with_node(me, |n, ctx| n.on_session_up(ctx, peer));
                    }
                }
            }
            Event::NodeDown { node } => {
                if self.down.insert(node) {
                    obs::event!(Netsim, Info, "netsim.node_down", node = node.0);
                    self.drop_node_events(node);
                    let torn: Vec<(RouterId, RouterId)> = self
                        .sessions
                        .keys()
                        .copied()
                        .filter(|&(x, y)| x == node || y == node)
                        .collect();
                    for (x, y) in torn {
                        self.sessions.remove(&(x, y));
                        let peer = if x == node { y } else { x };
                        if !self.down.contains(&peer) {
                            self.with_node(peer, |n, ctx| n.on_session_down(ctx, node));
                        }
                    }
                }
            }
            Event::NodeUp { node } => {
                if self.down.remove(&node) {
                    obs::event!(Netsim, Info, "netsim.node_up", node = node.0);
                    self.with_node(node, |n, ctx| n.on_restart(ctx));
                }
            }
        }
    }

    /// Convenience: run with default limits.
    pub fn run_to_quiescence(&mut self) -> RunOutcome {
        self.run(RunLimits::default())
    }

    fn with_node(&mut self, id: RouterId, f: impl FnOnce(&mut P, &mut Ctx<P::Msg>)) {
        // Reuse the pooled buffer instead of allocating per callback.
        let mut buf = std::mem::take(&mut self.action_buf);
        buf.clear();
        let mut ctx = Ctx {
            now: self.now,
            node: id,
            actions: buf,
        };
        // Temporarily remove the node so effects can be applied to self.
        let Some(mut node) = self.nodes.remove(&id) else {
            self.action_buf = ctx.actions;
            return;
        };
        f(&mut node, &mut ctx);
        self.nodes.insert(id, node);
        let mut actions = ctx.actions;
        for action in actions.drain(..) {
            self.apply_action(id, action);
        }
        self.action_buf = actions;
    }

    /// Applies one collected action emitted by node `from` at `self.now`.
    /// Shared by [`Sim::with_node`] and the parallel-epoch merge.
    pub(crate) fn apply_action(&mut self, from: RouterId, action: Action<P::Msg>) {
        match action {
            Action::Send { to, msg } => {
                if let Some(&lat) = self.session_latency(from, to) {
                    if let Some(stats) = self.stats.get_mut(&from) {
                        stats.transmitted += 1;
                    }
                    if obs::metrics::enabled() {
                        static SEND_LAT: std::sync::OnceLock<obs::Histogram> =
                            std::sync::OnceLock::new();
                        SEND_LAT
                            .get_or_init(|| {
                                obs::metrics::histogram(
                                    "netsim.send.latency_us",
                                    None,
                                    obs::metrics::LATENCY_BOUNDS_US,
                                )
                            })
                            .record(lat);
                    }
                    self.push(self.now + lat, Event::Deliver { from, to, msg });
                } else {
                    self.dropped += 1;
                }
            }
            Action::SetTimer { at, token } => {
                self.push(at.max(self.now), Event::Timer { node: from, token });
            }
        }
    }

    fn session_latency(&self, a: RouterId, b: RouterId) -> Option<&Time> {
        let key = if a < b { (a, b) } else { (b, a) };
        self.sessions.get(&key)
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    /// Panics for unknown ids; see [`Sim::contains_node`].
    pub fn node(&self, id: RouterId) -> &P {
        &self.nodes[&id]
    }

    /// Whether a node with this id exists.
    pub fn contains_node(&self, id: RouterId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Mutable access to a node (configuration between runs).
    pub fn node_mut(&mut self, id: RouterId) -> &mut P {
        self.nodes.get_mut(&id).expect("unknown node")
    }

    /// Iterates `(id, node)`.
    pub fn nodes(&self) -> impl Iterator<Item = (RouterId, &P)> {
        self.nodes.iter().map(|(k, v)| (*k, v))
    }

    /// Per-node counters.
    pub fn stats(&self, id: RouterId) -> NodeStats {
        self.stats.get(&id).copied().unwrap_or_default()
    }

    /// Messages dropped: sends without a session, in-flight messages
    /// discarded by session failures or crashes, and deliveries or
    /// external events addressed to a crashed node.
    pub fn dropped_messages(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A node that forwards every received number, decremented, to a
    /// fixed peer until it reaches zero.
    struct Countdown {
        peer: RouterId,
        log: Vec<u32>,
    }

    impl Protocol for Countdown {
        type Msg = u32;
        type External = u32;

        fn on_message(&mut self, ctx: &mut Ctx<u32>, _from: RouterId, msg: u32) {
            self.log.push(msg);
            if msg > 0 {
                ctx.send(self.peer, msg - 1);
            }
        }

        fn on_external(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
            ctx.send(self.peer, ev);
        }
    }

    fn two_node_sim() -> Sim<Countdown> {
        let mut sim = Sim::new();
        sim.add_node(
            RouterId(1),
            Countdown {
                peer: RouterId(2),
                log: vec![],
            },
        );
        sim.add_node(
            RouterId(2),
            Countdown {
                peer: RouterId(1),
                log: vec![],
            },
        );
        sim.add_session(RouterId(1), RouterId(2), 10);
        sim
    }

    #[test]
    fn ping_pong_quiesces() {
        let mut sim = two_node_sim();
        sim.schedule_external(0, RouterId(1), 5);
        let out = sim.run_to_quiescence();
        assert!(out.quiesced);
        // 5 -> r2, 4 -> r1, 3 -> r2, 2 -> r1, 1 -> r2, 0 -> r1: 6 deliveries + 1 external
        assert_eq!(out.events, 7);
        assert_eq!(sim.node(RouterId(2)).log, vec![5, 3, 1]);
        assert_eq!(sim.node(RouterId(1)).log, vec![4, 2, 0]);
        // Time: 6 hops * 10us latency.
        assert_eq!(sim.now(), 60);
        assert_eq!(sim.stats(RouterId(1)).transmitted, 3);
        assert_eq!(sim.stats(RouterId(1)).received, 3);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut sim = two_node_sim();
            sim.schedule_external(0, RouterId(1), 9);
            sim.schedule_external(3, RouterId(2), 4);
            sim.run_to_quiescence();
            (
                sim.node(RouterId(1)).log.clone(),
                sim.node(RouterId(2)).log.clone(),
                sim.now(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn event_limit_reports_non_quiescence() {
        // An infinite ping-pong: message never reaches zero.
        struct Forever {
            peer: RouterId,
        }
        impl Protocol for Forever {
            type Msg = ();
            type External = ();
            fn on_message(&mut self, ctx: &mut Ctx<()>, _from: RouterId, _msg: ()) {
                ctx.send(self.peer, ());
            }
            fn on_external(&mut self, ctx: &mut Ctx<()>, _ev: ()) {
                ctx.send(self.peer, ());
            }
        }
        let mut sim = Sim::new();
        sim.add_node(RouterId(1), Forever { peer: RouterId(2) });
        sim.add_node(RouterId(2), Forever { peer: RouterId(1) });
        sim.add_session(RouterId(1), RouterId(2), 1);
        sim.schedule_external(0, RouterId(1), ());
        let out = sim.run(RunLimits {
            max_events: 100,
            max_time: Time::MAX,
        });
        assert!(!out.quiesced);
        assert_eq!(out.events, 100);
    }

    #[test]
    fn send_without_session_is_dropped() {
        let mut sim = two_node_sim();
        sim.remove_session(RouterId(1), RouterId(2));
        sim.schedule_external(0, RouterId(1), 5);
        let out = sim.run_to_quiescence();
        assert!(out.quiesced);
        assert_eq!(sim.dropped_messages(), 1);
        assert!(sim.node(RouterId(2)).log.is_empty());
    }

    #[test]
    fn per_session_fifo_ordering() {
        struct Collector {
            log: Vec<u32>,
        }
        impl Protocol for Collector {
            type Msg = u32;
            type External = Vec<u32>;
            fn on_message(&mut self, _ctx: &mut Ctx<u32>, _from: RouterId, msg: u32) {
                self.log.push(msg);
            }
            fn on_external(&mut self, ctx: &mut Ctx<u32>, batch: Vec<u32>) {
                for m in batch {
                    ctx.send(RouterId(2), m);
                }
            }
        }
        let mut sim = Sim::new();
        sim.add_node(RouterId(1), Collector { log: vec![] });
        sim.add_node(RouterId(2), Collector { log: vec![] });
        sim.add_session(RouterId(1), RouterId(2), 50);
        sim.schedule_external(0, RouterId(1), vec![1, 2, 3, 4]);
        sim.run_to_quiescence();
        assert_eq!(sim.node(RouterId(2)).log, vec![1, 2, 3, 4]);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Protocol for TimerNode {
            type Msg = ();
            type External = ();
            fn on_message(&mut self, _: &mut Ctx<()>, _: RouterId, _: ()) {}
            fn on_external(&mut self, ctx: &mut Ctx<()>, _: ()) {
                ctx.set_timer(30, 3);
                ctx.set_timer(10, 1);
                ctx.set_timer(20, 2);
            }
            fn on_timer(&mut self, _: &mut Ctx<()>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut sim = Sim::new();
        sim.add_node(RouterId(1), TimerNode { fired: vec![] });
        sim.schedule_external(0, RouterId(1), ());
        sim.run_to_quiescence();
        assert_eq!(sim.node(RouterId(1)).fired, vec![1, 2, 3]);
        assert_eq!(sim.now(), 30);
    }

    /// Records every hook invocation; used by the fault-semantics tests.
    struct HookRecorder {
        peer: RouterId,
        received: Vec<u32>,
        downs: Vec<RouterId>,
        ups: Vec<RouterId>,
        restarts: u32,
    }

    impl HookRecorder {
        fn new(peer: RouterId) -> Self {
            HookRecorder {
                peer,
                received: vec![],
                downs: vec![],
                ups: vec![],
                restarts: 0,
            }
        }
    }

    impl Protocol for HookRecorder {
        type Msg = u32;
        type External = u32;

        fn on_message(&mut self, _ctx: &mut Ctx<u32>, _from: RouterId, msg: u32) {
            self.received.push(msg);
        }

        fn on_external(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
            ctx.send(self.peer, ev);
        }

        fn on_session_down(&mut self, _ctx: &mut Ctx<u32>, peer: RouterId) {
            self.downs.push(peer);
        }

        fn on_session_up(&mut self, _ctx: &mut Ctx<u32>, peer: RouterId) {
            self.ups.push(peer);
        }

        fn on_restart(&mut self, _ctx: &mut Ctx<u32>) {
            self.restarts += 1;
        }
    }

    fn recorder_pair() -> Sim<HookRecorder> {
        let mut sim = Sim::new();
        sim.add_node(RouterId(1), HookRecorder::new(RouterId(2)));
        sim.add_node(RouterId(2), HookRecorder::new(RouterId(1)));
        sim.add_session(RouterId(1), RouterId(2), 100);
        sim
    }

    #[test]
    fn remove_session_drops_in_flight() {
        let mut sim = recorder_pair();
        // Three messages leave node 1 at t=0 with latency 100; the
        // session dies underneath them.
        sim.schedule_external(0, RouterId(1), 7);
        sim.schedule_external(0, RouterId(1), 8);
        sim.schedule_external(0, RouterId(1), 9);
        sim.schedule_session_down(50, RouterId(1), RouterId(2));
        let out = sim.run_to_quiescence();
        assert!(out.quiesced);
        assert!(
            sim.node(RouterId(2)).received.is_empty(),
            "in-flight delivered"
        );
        assert_eq!(sim.dropped_messages(), 3);
        assert!(!sim.has_session(RouterId(1), RouterId(2)));
        assert_eq!(sim.num_sessions(), 0);
    }

    #[test]
    fn session_down_fires_once_per_endpoint() {
        let mut sim = recorder_pair();
        sim.schedule_session_down(10, RouterId(1), RouterId(2));
        // A second down for the same (now absent) session is a no-op.
        sim.schedule_session_down(20, RouterId(2), RouterId(1));
        sim.run_to_quiescence();
        assert_eq!(sim.node(RouterId(1)).downs, vec![RouterId(2)]);
        assert_eq!(sim.node(RouterId(2)).downs, vec![RouterId(1)]);
    }

    #[test]
    fn session_up_restores_delivery_and_fires_hooks() {
        let mut sim = recorder_pair();
        sim.schedule_session_down(10, RouterId(1), RouterId(2));
        sim.schedule_session_up(500, RouterId(1), RouterId(2), 100);
        sim.schedule_external(600, RouterId(1), 42);
        let out = sim.run_to_quiescence();
        assert!(out.quiesced);
        assert_eq!(sim.node(RouterId(1)).ups, vec![RouterId(2)]);
        assert_eq!(sim.node(RouterId(2)).ups, vec![RouterId(1)]);
        assert_eq!(sim.node(RouterId(2)).received, vec![42]);
        assert!(sim.has_session(RouterId(1), RouterId(2)));
        assert_eq!(sim.num_sessions(), 1);
    }

    #[test]
    fn node_crash_tears_sessions_and_restart_resets() {
        let mut sim = recorder_pair();
        sim.schedule_node_down(10, RouterId(2));
        // Delivery addressed to the crashed node and external feed
        // events during the outage are discarded.
        sim.schedule_external(20, RouterId(1), 5);
        sim.schedule_external(30, RouterId(2), 6);
        sim.schedule_node_up(1_000, RouterId(2));
        sim.schedule_session_up(1_100, RouterId(1), RouterId(2), 100);
        sim.schedule_external(1_200, RouterId(1), 77);
        let out = sim.run_to_quiescence();
        assert!(out.quiesced);
        // Peer saw the session die exactly once, then come back.
        assert_eq!(sim.node(RouterId(1)).downs, vec![RouterId(2)]);
        assert_eq!(sim.node(RouterId(1)).ups, vec![RouterId(2)]);
        assert_eq!(sim.node(RouterId(2)).restarts, 1);
        // Only the post-restart message arrived.
        assert_eq!(sim.node(RouterId(2)).received, vec![77]);
        assert!(sim.is_node_up(RouterId(2)));
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn duplicate_node_panics() {
        let mut sim: Sim<Countdown> = Sim::new();
        sim.add_node(
            RouterId(1),
            Countdown {
                peer: RouterId(2),
                log: vec![],
            },
        );
        sim.add_node(
            RouterId(1),
            Countdown {
                peer: RouterId(2),
                log: vec![],
            },
        );
    }
}
