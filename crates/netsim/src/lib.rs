//! A deterministic discrete-event network simulator.
//!
//! The paper's testbed ran ABRR/TBRR on real Quagga daemons and replayed
//! two weeks of BGP updates; the measured quantities were protocol
//! counters (RIB sizes, updates received / generated / transmitted),
//! not wall-clock timings (§4: the authors explicitly did not preserve
//! absolute timing, and verified the update counts are insensitive to
//! feed rate within 3%). This simulator reproduces exactly those
//! semantics: reliable ordered sessions with configurable latency,
//! per-peer MRAI pacing, and per-node counters — with the added benefit
//! that every run is bit-for-bit reproducible.
//!
//! Design follows the event-driven philosophy of smoltcp and the
//! actor/message-passing structure of Tokio services, but synchronously:
//! a single `(time, seq)`-ordered event heap, nodes as state machines
//! implementing [`Protocol`], and all I/O expressed as messages.
//!
//! Three execution engines share that state: the sequential loop
//! [`Sim::run`] (the oracle); the conservative epoch-parallel engine
//! [`Sim::run_parallel`] (see [`parallel`]), which drains each
//! same-timestamp epoch across a worker pool and merges results in
//! sequential order; and the AP-sharded engine [`Sim::run_sharded`]
//! (see [`sharded`]), which batches prefix-plane events into
//! multi-timestamp lookahead windows routed to per-shard workers,
//! fencing only at session-semantic boundaries. All three produce
//! bit-identical outputs, selectable per run via [`Engine`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mrai;
pub mod parallel;
pub mod sharded;
pub mod sim;

pub use mrai::{Mrai, MraiVerdict};
pub use sim::{Ctx, Engine, ExternalClass, NodeStats, Protocol, RunLimits, RunOutcome, Sim, Time};
