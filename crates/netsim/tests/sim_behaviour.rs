//! Integration-level simulator behaviour: time limits, session
//! lifecycle, external-event clamping, and run-resume semantics.

use bgp_types::RouterId;
use netsim::{Ctx, Protocol, RunLimits, Sim};

/// Echoes each received number back after a fixed think-time.
struct Echo {
    peer: RouterId,
    think_us: u64,
    log: Vec<(u64, u32)>,
}

impl Protocol for Echo {
    type Msg = u32;
    type External = u32;

    fn on_message(&mut self, ctx: &mut Ctx<u32>, _from: RouterId, msg: u32) {
        self.log.push((ctx.now(), msg));
        if msg > 0 {
            ctx.set_timer(ctx.now() + self.think_us, msg as u64);
        }
    }

    fn on_external(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
        ctx.send(self.peer, ev);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<u32>, token: u64) {
        ctx.send(self.peer, token as u32 - 1);
    }
}

fn echo_pair(think_us: u64) -> Sim<Echo> {
    let mut sim = Sim::new();
    sim.add_node(
        RouterId(1),
        Echo {
            peer: RouterId(2),
            think_us,
            log: vec![],
        },
    );
    sim.add_node(
        RouterId(2),
        Echo {
            peer: RouterId(1),
            think_us,
            log: vec![],
        },
    );
    sim.add_session(RouterId(1), RouterId(2), 100);
    sim
}

#[test]
fn max_time_pauses_and_run_resumes() {
    let mut sim = echo_pair(1_000);
    sim.schedule_external(0, RouterId(1), 10);
    // Pause mid-flight.
    let out1 = sim.run(RunLimits {
        max_events: u64::MAX,
        max_time: 3_000,
    });
    assert!(!out1.quiesced);
    // Resume to completion: nothing is lost.
    let out2 = sim.run(RunLimits {
        max_events: u64::MAX,
        max_time: u64::MAX,
    });
    assert!(out2.quiesced);
    let total: usize = sim.node(RouterId(1)).log.len() + sim.node(RouterId(2)).log.len();
    assert_eq!(
        total, 11,
        "all countdown messages (10..=0) delivered across the pause"
    );
    // Resumed runs never rewind time.
    assert!(out2.end_time >= out1.end_time);
}

#[test]
fn paused_run_outcome_is_consistent_with_event_budget() {
    let mut sim = echo_pair(1_000);
    sim.schedule_external(0, RouterId(1), 10);
    let mut events = 0;
    loop {
        let out = sim.run(RunLimits {
            max_events: 2,
            max_time: u64::MAX,
        });
        events += out.events;
        if out.quiesced {
            break;
        }
        assert_eq!(out.events, 2, "paused runs consume exactly the budget");
    }
    // 1 external + 11 deliveries (10..=0) + 10 timers (for 10..=1).
    assert_eq!(events, 22);
}

#[test]
fn external_events_in_the_past_are_clamped_to_now() {
    let mut sim = echo_pair(0);
    sim.schedule_external(5_000, RouterId(1), 0);
    sim.run(RunLimits {
        max_events: u64::MAX,
        max_time: u64::MAX,
    });
    assert_eq!(sim.now(), 5_100);
    // Scheduling "at 0" now must not rewind time.
    sim.schedule_external(0, RouterId(1), 0);
    let out = sim.run(RunLimits {
        max_events: u64::MAX,
        max_time: u64::MAX,
    });
    assert!(out.quiesced);
    let log = &sim.node(RouterId(2)).log;
    assert!(log.iter().all(|(t, _)| *t >= 5_100), "{log:?}");
}

#[test]
fn session_removal_mid_run_drops_later_sends() {
    let mut sim = echo_pair(1_000);
    sim.schedule_external(0, RouterId(1), 10);
    sim.run(RunLimits {
        max_events: 6,
        max_time: u64::MAX,
    });
    sim.remove_session(RouterId(1), RouterId(2));
    let out = sim.run(RunLimits {
        max_events: u64::MAX,
        max_time: u64::MAX,
    });
    assert!(out.quiesced);
    assert!(sim.dropped_messages() > 0, "post-removal sends are dropped");
    let total = sim.node(RouterId(1)).log.len() + sim.node(RouterId(2)).log.len();
    assert!(
        total < 10,
        "the countdown cannot finish without the session"
    );
}

#[test]
fn stats_track_both_directions() {
    let mut sim = echo_pair(500);
    sim.schedule_external(0, RouterId(1), 4);
    sim.run(RunLimits {
        max_events: u64::MAX,
        max_time: u64::MAX,
    });
    let s1 = sim.stats(RouterId(1));
    let s2 = sim.stats(RouterId(2));
    assert_eq!(s1.transmitted, s2.received);
    assert_eq!(s2.transmitted, s1.received);
    // Messages 4..=0 cross the wire: five transmissions in total.
    assert_eq!(s1.transmitted + s2.transmitted, 5);
}

#[test]
fn contains_node_and_unknown_stats() {
    let sim = echo_pair(0);
    assert!(sim.contains_node(RouterId(1)));
    assert!(!sim.contains_node(RouterId(99)));
    assert_eq!(sim.stats(RouterId(99)), netsim::NodeStats::default());
}
