//! Wall-clock engine profiling.
//!
//! Everything here is **nondeterministic by nature** (wall time, queue
//! depths under a particular thread schedule) and therefore lives
//! outside the metrics registry: it must never be part of an
//! engine-equivalence comparison. The engines feed it when profiling
//! is enabled; `obs_report` in the bench pipeline renders it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Wall nanoseconds spent inside parallel worker tasks (utilization
/// numerator; accumulated from worker threads, hence an atomic rather
/// than a `RunProfile` field filled at run end).
static TASK_NS: AtomicU64 = AtomicU64::new(0);

/// Turns engine profiling on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiling is on (one relaxed load; engines check this once
/// per run and once per epoch, never per event).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Profile of one engine run (one `Sim::run` / `Sim::run_parallel`
/// call).
#[derive(Clone, Debug, Default)]
pub struct RunProfile {
    /// `"seq"`, `"par"`, or `"sharded"`.
    pub engine: &'static str,
    /// Worker threads (0 for the sequential engine).
    pub threads: usize,
    /// Wall time of the whole call, nanoseconds.
    pub wall_ns: u64,
    /// Events processed.
    pub events: u64,
    /// Parallel epochs (or sharded windows) executed (0 for the
    /// sequential engine).
    pub epochs: u64,
    /// Synchronization fences dispatched sequentially (sharded engine
    /// only; 0 elsewhere).
    pub fences: u64,
    /// Largest event-queue depth observed.
    pub max_queue: usize,
    /// Largest single-epoch batch (pure events run concurrently).
    pub max_epoch_batch: usize,
    /// Wall nanoseconds spent inside worker tasks (summed across
    /// workers; `task_ns / (wall_ns * threads)` approximates worker
    /// utilization).
    pub task_ns: u64,
}

fn runs() -> &'static Mutex<Vec<RunProfile>> {
    static RUNS: OnceLock<Mutex<Vec<RunProfile>>> = OnceLock::new();
    RUNS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Worker hook: adds `ns` of in-task execution time to the run being
/// recorded.
pub fn add_task_ns(ns: u64) {
    TASK_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Engine hook: called at run start so [`add_task_ns`] accumulation
/// belongs to this run.
pub fn run_started() {
    TASK_NS.store(0, Ordering::Relaxed);
}

/// Engine hook: records a finished run (fills `task_ns` from the
/// worker accumulator).
pub fn run_finished(mut profile: RunProfile) {
    profile.task_ns = TASK_NS.swap(0, Ordering::Relaxed);
    runs().lock().expect("profile store poisoned").push(profile);
}

/// Takes every recorded run profile (clearing the store).
pub fn take_runs() -> Vec<RunProfile> {
    std::mem::take(&mut *runs().lock().expect("profile store poisoned"))
}

/// Renders run profiles as the `obs_report` profiling section.
pub fn render_runs(profiles: &[RunProfile]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, p) in profiles.iter().enumerate() {
        let wall_ms = p.wall_ns as f64 / 1e6;
        let ev_per_s = if p.wall_ns > 0 {
            p.events as f64 / (p.wall_ns as f64 / 1e9)
        } else {
            0.0
        };
        write!(
            out,
            "  run {i}: engine={} threads={} wall={wall_ms:.1}ms events={} ({ev_per_s:.0}/s) max_queue={}",
            p.engine, p.threads, p.events, p.max_queue
        )
        .expect("write to String");
        if p.engine == "par" || p.engine == "sharded" {
            let util = if p.wall_ns > 0 && p.threads > 0 {
                p.task_ns as f64 / (p.wall_ns as f64 * p.threads as f64)
            } else {
                0.0
            };
            write!(
                out,
                " epochs={} max_batch={} utilization={:.0}%",
                p.epochs,
                p.max_epoch_batch,
                util * 100.0
            )
            .expect("write to String");
            if p.engine == "sharded" {
                write!(out, " fences={}", p.fences).expect("write to String");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_render() {
        set_enabled(true);
        run_started();
        add_task_ns(500);
        run_finished(RunProfile {
            engine: "par",
            threads: 2,
            wall_ns: 1_000,
            events: 10,
            epochs: 3,
            fences: 0,
            max_queue: 7,
            max_epoch_batch: 4,
            task_ns: 0,
        });
        set_enabled(false);
        let runs = take_runs();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].task_ns, 500, "task accumulator folded in");
        let text = render_runs(&runs);
        assert!(text.contains("engine=par"), "{text}");
        assert!(text.contains("utilization=25%"), "{text}");
        assert!(take_runs().is_empty());
    }
}
