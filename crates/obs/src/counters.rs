//! Per-node update counters, mirroring the quantities of paper §4.2.
//!
//! Migrated here from `crates/core/src/counters.rs` (which re-exports
//! this type unchanged) so the observability layer owns all update
//! accounting. The struct itself stays a plain always-on value type —
//! the paper's results are computed from it, so it is never gated
//! behind the metrics enable flag; the registry carries *mirrors* of
//! these counts (plus the new per-node series) when enabled.

use serde::{Deserialize, Serialize};

/// Update accounting for one node.
///
/// The paper distinguishes three costs (§4.2): *received* updates,
/// *generated* updates ("updates to the RIB-Out" — the expensive
/// operation, since a generation implies running the decision and
/// rewriting RIB-Out state), and *transmitted* updates (cheap copies of
/// an already-generated update, one per peer). `bytes_transmitted`
/// backs the §4.2 bandwidth comparison (ABRR updates are ~10× longer
/// but ~2.5× fewer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateCounters {
    /// iBGP updates received (client + RR roles combined).
    pub received: u64,
    /// Updates generated: changes written to a RIB-Out peer group.
    pub generated: u64,
    /// Updates transmitted to peers (post-MRAI, one per destination).
    pub transmitted: u64,
    /// Bytes put on the wire (when byte accounting is enabled).
    pub bytes_transmitted: u64,
    /// Updates discarded by loop prevention (ABRR reflected bit,
    /// RFC 4456 cluster list / originator id).
    pub loop_prevented: u64,
    /// eBGP announcements/withdrawals ingested from outside.
    pub ebgp_events: u64,
    /// Advertisements exported to eBGP neighbors (Table 1's
    /// "Client → eBGP Neighbor: all best routes, not returned to
    /// sender"). External peers are not simulated, so this counts the
    /// per-neighbor export events a real border router would emit.
    pub ebgp_exported: u64,
}

impl UpdateCounters {
    /// Adds another counter set into this one (for fleet aggregation).
    pub fn merge(&mut self, other: &UpdateCounters) {
        self.received += other.received;
        self.generated += other.generated;
        self.transmitted += other.transmitted;
        self.bytes_transmitted += other.bytes_transmitted;
        self.loop_prevented += other.loop_prevented;
        self.ebgp_events += other.ebgp_events;
        self.ebgp_exported += other.ebgp_exported;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = UpdateCounters {
            received: 1,
            generated: 2,
            transmitted: 3,
            bytes_transmitted: 4,
            loop_prevented: 5,
            ebgp_events: 6,
            ebgp_exported: 7,
        };
        a.merge(&a.clone());
        assert_eq!(a.received, 2);
        assert_eq!(a.generated, 4);
        assert_eq!(a.transmitted, 6);
        assert_eq!(a.bytes_transmitted, 8);
        assert_eq!(a.loop_prevented, 10);
        assert_eq!(a.ebgp_events, 12);
        assert_eq!(a.ebgp_exported, 14);
    }
}
