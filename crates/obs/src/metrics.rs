//! Typed metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Keys are interned [`Symbol`]s plus an optional node label, so the
//! hot path carries a 4-byte id and an `Option<u32>` instead of
//! strings. Handles are cheap `Arc`s into the registry's cells;
//! recording is a relaxed atomic op guarded by one relaxed load of the
//! global enable flag — effectively free when disabled.
//!
//! # Determinism contract
//!
//! Only quantities that are **identical under both engines** belong
//! here: counter increments and histogram records are commutative
//! (the parallel engine applies the same multiset of updates in a
//! different order), and gauges must be single-writer per
//! `(metric, node)` label (a node's callbacks always run on one thread
//! per epoch). Wall-clock anything goes in [`crate::profile`] instead.
//! `crates/bench/tests/obs_determinism.rs` holds the line: sequential
//! and 8-worker runs must produce equal [`snapshot`]s.
//!
//! # Reset semantics
//!
//! [`reset`] zeroes every registered cell but keeps registrations, so
//! long-lived handles (including `static` ones in hot paths) stay
//! valid across runs.

use bgp_types::{intern_str, resolve_symbol, Symbol};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metric recording on or off (handles stay valid either way).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric recording is on (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Exponential sim-tick (microsecond) bounds for latency histograms.
pub const LATENCY_BOUNDS_US: &[u64] = &[
    1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576,
];

/// Power-of-two bounds for small cardinalities (batch sizes, candidate
/// counts, queue occupancy).
pub const COUNT_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];

struct HistogramCells {
    bounds: &'static [u64],
    /// One cell per bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

enum Instrument {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCells>),
}

/// A monotone counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1 when metrics are enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `v` when metrics are enabled.
    #[inline]
    pub fn add(&self, v: u64) {
        if enabled() {
            self.0.fetch_add(v, Ordering::Relaxed);
        }
    }
}

/// A last-write-wins gauge handle. Must be single-writer per
/// `(metric, node)` label to stay deterministic (see module docs).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Stores `v` when metrics are enabled.
    #[inline]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }
}

/// A fixed-bucket histogram handle.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// Records `v` when metrics are enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        let cells = &*self.0;
        let idx = cells
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(cells.bounds.len());
        cells.buckets[idx].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(v, Ordering::Relaxed);
    }
}

/// A metric key: interned name plus optional node id.
type MetricKey = (Symbol, Option<u32>);

fn registry() -> &'static Mutex<BTreeMap<MetricKey, Instrument>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<MetricKey, Instrument>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Registers (or retrieves) the counter `name` for `node`.
pub fn counter(name: &str, node: Option<u32>) -> Counter {
    let key = (intern_str(name), node);
    let mut reg = registry().lock().expect("metrics registry poisoned");
    let inst = reg
        .entry(key)
        .or_insert_with(|| Instrument::Counter(Arc::new(AtomicU64::new(0))));
    match inst {
        Instrument::Counter(c) => Counter(c.clone()),
        _ => panic!("metric `{name}` already registered with another type"),
    }
}

/// Registers (or retrieves) the gauge `name` for `node`.
pub fn gauge(name: &str, node: Option<u32>) -> Gauge {
    let key = (intern_str(name), node);
    let mut reg = registry().lock().expect("metrics registry poisoned");
    let inst = reg
        .entry(key)
        .or_insert_with(|| Instrument::Gauge(Arc::new(AtomicU64::new(0))));
    match inst {
        Instrument::Gauge(g) => Gauge(g.clone()),
        _ => panic!("metric `{name}` already registered with another type"),
    }
}

/// Registers (or retrieves) the histogram `name` for `node`, with
/// `bounds` as its upper bucket bounds (plus an implicit overflow
/// bucket).
pub fn histogram(name: &str, node: Option<u32>, bounds: &'static [u64]) -> Histogram {
    let key = (intern_str(name), node);
    let mut reg = registry().lock().expect("metrics registry poisoned");
    let inst = reg.entry(key).or_insert_with(|| {
        Instrument::Histogram(Arc::new(HistogramCells {
            bounds,
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    });
    match inst {
        Instrument::Histogram(h) => {
            assert_eq!(
                h.bounds, bounds,
                "histogram `{name}` already registered with other bounds"
            );
            Histogram(h.clone())
        }
        _ => panic!("metric `{name}` already registered with another type"),
    }
}

/// The value of one metric at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram state.
    Histogram {
        /// Upper bucket bounds.
        bounds: Vec<u64>,
        /// Per-bucket counts (`bounds.len() + 1`, last = overflow).
        buckets: Vec<u64>,
        /// Recorded sample count.
        count: u64,
        /// Sum of recorded values.
        sum: u64,
    },
}

/// An ordered, resolved snapshot of every registered metric — the
/// comparison unit of the engine-equivalence invariant test.
pub type MetricsSnapshot = BTreeMap<(String, Option<u32>), MetricValue>;

/// Snapshots every registered metric with names resolved.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().lock().expect("metrics registry poisoned");
    reg.iter()
        .map(|(&(sym, node), inst)| {
            let value = match inst {
                Instrument::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                Instrument::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
                Instrument::Histogram(h) => MetricValue::Histogram {
                    bounds: h.bounds.to_vec(),
                    buckets: h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                    count: h.count.load(Ordering::Relaxed),
                    sum: h.sum.load(Ordering::Relaxed),
                },
            };
            ((resolve_symbol(sym).to_string(), node), value)
        })
        .collect()
}

/// Zeroes every registered cell, keeping registrations (and therefore
/// all live handles) valid. Does not change the enable flag.
pub fn reset() {
    let reg = registry().lock().expect("metrics registry poisoned");
    for inst in reg.values() {
        match inst {
            Instrument::Counter(c) | Instrument::Gauge(c) => c.store(0, Ordering::Relaxed),
            Instrument::Histogram(h) => {
                for b in &h.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                h.count.store(0, Ordering::Relaxed);
                h.sum.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Renders a snapshot as aligned `name[node] value` lines, summing
/// per-node series into a `(all)` row — the `obs_report` body.
pub fn render_snapshot(snap: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut totals: BTreeMap<&str, (u64, bool)> = BTreeMap::new();
    for ((name, _), value) in snap {
        let v = match value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => *v,
            MetricValue::Histogram { count, .. } => *count,
        };
        let entry = totals.entry(name.as_str()).or_insert((0, false));
        entry.0 += v;
        entry.1 |= matches!(value, MetricValue::Histogram { .. });
    }
    let width = totals.keys().map(|n| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, (total, is_hist)) in totals {
        let unit = if is_hist { " samples" } else { "" };
        writeln!(out, "  {name:<width$}  {total}{unit}").expect("write to String");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_is_inert() {
        let _g = guard();
        set_enabled(false);
        let c = counter("obs.test.inert", None);
        c.inc();
        c.add(5);
        let h = histogram("obs.test.inert_h", None, COUNT_BOUNDS);
        h.record(3);
        let snap = snapshot();
        assert_eq!(
            snap.get(&("obs.test.inert".to_string(), None)),
            Some(&MetricValue::Counter(0))
        );
        match snap.get(&("obs.test.inert_h".to_string(), None)) {
            Some(MetricValue::Histogram { count, .. }) => assert_eq!(*count, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn counters_gauges_histograms_record() {
        let _g = guard();
        set_enabled(true);
        let c = counter("obs.test.c", Some(7));
        c.inc();
        c.add(2);
        let g = gauge("obs.test.g", Some(7));
        g.set(41);
        g.set(42);
        let h = histogram("obs.test.h", None, &[10, 100]);
        for v in [1, 10, 11, 1000] {
            h.record(v);
        }
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(
            snap.get(&("obs.test.c".to_string(), Some(7))),
            Some(&MetricValue::Counter(3))
        );
        assert_eq!(
            snap.get(&("obs.test.g".to_string(), Some(7))),
            Some(&MetricValue::Gauge(42))
        );
        assert_eq!(
            snap.get(&("obs.test.h".to_string(), None)),
            Some(&MetricValue::Histogram {
                bounds: vec![10, 100],
                buckets: vec![2, 1, 1],
                count: 4,
                sum: 1022,
            })
        );
    }

    #[test]
    fn reset_keeps_handles_valid() {
        let _g = guard();
        set_enabled(true);
        let c = counter("obs.test.reset", None);
        c.inc();
        reset();
        c.inc();
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(
            snap.get(&("obs.test.reset".to_string(), None)),
            Some(&MetricValue::Counter(1))
        );
        // Re-registration under the same name returns the same cell.
        let c2 = counter("obs.test.reset", None);
        set_enabled(true);
        c2.inc();
        set_enabled(false);
        match snapshot().get(&("obs.test.reset".to_string(), None)) {
            Some(MetricValue::Counter(v)) => assert_eq!(*v, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parallel_updates_commute() {
        let _g = guard();
        set_enabled(true);
        let c = counter("obs.test.par", None);
        let h = histogram("obs.test.par_h", None, COUNT_BOUNDS);
        reset();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        c.inc();
                        h.record(t * 100 + i);
                    }
                });
            }
        });
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(
            snap.get(&("obs.test.par".to_string(), None)),
            Some(&MetricValue::Counter(800))
        );
        match snap.get(&("obs.test.par_h".to_string(), None)) {
            Some(MetricValue::Histogram { count, sum, .. }) => {
                assert_eq!(*count, 800);
                assert_eq!(*sum, (0..800u64).sum::<u64>());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
