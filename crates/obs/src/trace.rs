//! Structured event traces with a deterministic merge order.
//!
//! # The determinism argument
//!
//! The simulator dispatches every event from a heap entry with a unique
//! `(time, sequence-id)` pair, and the parallel engine provably pops
//! and pushes the same entries with the same ids as the sequential one
//! (see `netsim::parallel`). Both engines therefore stamp a *dispatch
//! context* `(t, seq)` before invoking each protocol callback — the
//! sequential loop on the main thread, the parallel engine inside each
//! worker task. Every trace event recorded during a callback inherits
//! that stamp plus an intra-callback counter `k`, giving the sort key
//!
//! ```text
//! (t, phase, seq, k)      phase 0 = outside dispatch, 1 = in-callback
//! ```
//!
//! One callback runs on exactly one thread, so `(t, 1, seq)` never
//! spans threads and `k` restores the emission order within it. Events
//! recorded *outside* any callback (fault-schedule compilation, test
//! setup) run on one thread in program order under both engines and
//! take phase 0 with a global sequence number. Both engines thus
//! produce the same **multiset** of keyed events; [`drain_jsonl`] sorts
//! by key and renders — byte-identical output, proven by
//! `crates/bench/tests/obs_determinism.rs` on the golden scenarios.
//!
//! # Cost when disabled
//!
//! [`enabled`] is two relaxed atomic loads; [`set_dispatch`] is one.
//! No allocation, no locking, no TLS access happens until a
//! `(subsystem, level)` pair is actually enabled.
//!
//! # Buffering
//!
//! Each thread appends to a thread-local ring buffer that flushes into
//! a global sink when full and on thread exit; worker threads are
//! scoped (joined before `run_parallel` returns), so no event can be
//! lost. [`drain_jsonl`] flushes the calling thread, sorts the sink,
//! and renders.

use crate::{Level, Subsystem, NUM_SUBSYSTEMS};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// A typed field value attached to a trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FieldValue {
    /// Unsigned count.
    U64(u64),
    /// Signed count.
    I64(i64),
    /// Boolean flag.
    Bool(bool),
    /// Text (JSON-escaped on render).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// An open trace span: emits its exit event when dropped. Construct
/// through the [`crate::span!`] macro, which derives the static
/// `.enter`/`.exit` names at compile time.
pub struct Span {
    sub: Subsystem,
    lvl: Level,
    exit_name: &'static str,
    node: Option<u32>,
    armed: bool,
}

impl Span {
    /// Emits the enter event (when enabled) and returns the guard.
    pub fn enter(
        sub: Subsystem,
        lvl: Level,
        enter_name: &'static str,
        exit_name: &'static str,
        node: Option<u32>,
    ) -> Span {
        let armed = enabled(sub, lvl);
        if armed {
            record(sub, lvl, enter_name, node, Vec::new());
        }
        Span {
            sub,
            lvl,
            exit_name,
            node,
            armed,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            record(self.sub, self.lvl, self.exit_name, self.node, Vec::new());
        }
    }
}

/// Flush the thread-local buffer into the sink at this many events.
const FLUSH_AT: usize = 256;

static INIT_DONE: AtomicBool = AtomicBool::new(false);
/// Highest enabled level across all subsystems (0 = tracing off).
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);
/// Per-subsystem enabled level, indexed by `Subsystem as usize`.
static SUB_LEVELS: [AtomicU8; NUM_SUBSYSTEMS] = [
    AtomicU8::new(0),
    AtomicU8::new(0),
    AtomicU8::new(0),
    AtomicU8::new(0),
    AtomicU8::new(0),
    AtomicU8::new(0),
];
/// Sequence for events recorded outside any dispatch context.
static FALLBACK_SEQ: AtomicU64 = AtomicU64::new(0);

/// One recorded event, keyed for the deterministic merge.
struct TraceEvent {
    t: u64,
    phase: u8,
    seq: u64,
    k: u32,
    sub: Subsystem,
    lvl: Level,
    name: &'static str,
    node: Option<u32>,
    fields: Vec<(&'static str, FieldValue)>,
}

fn sink() -> &'static Mutex<Vec<TraceEvent>> {
    static SINK: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// Thread-local event buffer that flushes into the sink when it fills
/// ([`FLUSH_AT`]), on [`flush_local`], and on drop as a last resort.
///
/// The drop flush alone is NOT enough for worker threads: thread-local
/// destructors may run *after* the point where `thread::scope` observes
/// the thread as finished, so an engine that drains right after joining
/// its workers can race the destructor and miss the tail of the trace.
/// Engines must have each worker call [`flush_local`] before its
/// closure returns.
struct LocalBuf {
    events: RefCell<Vec<TraceEvent>>,
}

impl LocalBuf {
    fn flush(&self) {
        let mut events = self.events.borrow_mut();
        if !events.is_empty() {
            sink()
                .lock()
                .expect("trace sink poisoned")
                .extend(events.drain(..));
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        let events = self.events.get_mut();
        if !events.is_empty() {
            if let Ok(mut s) = sink().lock() {
                s.extend(events.drain(..));
            }
        }
    }
}

thread_local! {
    static LOCAL: LocalBuf = const { LocalBuf { events: RefCell::new(Vec::new()) } };
    /// The dispatch context: `(t, seq, next_k)` of the callback this
    /// thread is currently executing, if any.
    static DISPATCH: Cell<Option<(u64, u64, u32)>> = const { Cell::new(None) };
}

fn ensure_init() {
    if INIT_DONE.load(Ordering::Relaxed) {
        return;
    }
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let spec = std::env::var("ABRR_TRACE").unwrap_or_default();
        apply_spec(&spec);
        INIT_DONE.store(true, Ordering::Relaxed);
    });
}

fn apply_spec(spec: &str) {
    let mut levels = [Level::Off; NUM_SUBSYSTEMS];
    for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        match tok.split_once('=') {
            Some((sub, lvl)) => {
                if let (Some(sub), Some(lvl)) = (Subsystem::parse(sub), Level::parse(lvl)) {
                    levels[sub as usize] = lvl;
                }
            }
            None => {
                if let Some(lvl) = Level::parse(tok) {
                    levels = [lvl; NUM_SUBSYSTEMS];
                }
            }
        }
    }
    let max = levels.iter().copied().max().unwrap_or(Level::Off);
    for (slot, lvl) in SUB_LEVELS.iter().zip(levels) {
        slot.store(lvl as u8, Ordering::Relaxed);
    }
    MAX_LEVEL.store(max as u8, Ordering::Relaxed);
}

/// Programmatically sets the filter spec (same grammar as the
/// `ABRR_TRACE` env var: a bare level, or `sub=level` pairs separated
/// by commas; unknown tokens are ignored). Overrides the env var.
pub fn set_spec(spec: &str) {
    ensure_init();
    apply_spec(spec);
}

/// Whether any tracing is enabled at all (one relaxed load).
#[inline]
pub fn active() -> bool {
    MAX_LEVEL.load(Ordering::Relaxed) != 0
}

/// Whether `(sub, lvl)` is enabled. The macros check this before
/// evaluating field expressions.
#[inline]
pub fn enabled(sub: Subsystem, lvl: Level) -> bool {
    ensure_init();
    let l = lvl as u8;
    l != 0
        && l <= MAX_LEVEL.load(Ordering::Relaxed)
        && l <= SUB_LEVELS[sub as usize].load(Ordering::Relaxed)
}

/// Engine hook: stamps the dispatch context before a protocol callback
/// for heap entry `seq` executing at simulated time `t`. Both engines
/// call this with identical `(t, seq)` pairs (see module docs).
#[inline]
pub fn set_dispatch(t: u64, seq: u64) {
    ensure_init();
    if !active() {
        return;
    }
    DISPATCH.with(|d| d.set(Some((t, seq, 0))));
}

/// Engine hook: clears the dispatch context at run entry/exit so
/// emissions between runs (fault compilation, setup) take the
/// phase-0 fallback key under both engines.
#[inline]
pub fn clear_dispatch() {
    if !active() {
        return;
    }
    DISPATCH.with(|d| d.set(None));
}

/// Records one event. Call through the [`crate::event!`] macro, which
/// performs the [`enabled`] check first.
pub fn record(
    sub: Subsystem,
    lvl: Level,
    name: &'static str,
    node: Option<u32>,
    fields: Vec<(&'static str, FieldValue)>,
) {
    let (t, phase, seq, k) = DISPATCH.with(|d| match d.get() {
        Some((t, seq, k)) => {
            d.set(Some((t, seq, k + 1)));
            (t, 1u8, seq, k)
        }
        None => {
            let seq = FALLBACK_SEQ.fetch_add(1, Ordering::Relaxed);
            (0, 0u8, seq, 0)
        }
    });
    let ev = TraceEvent {
        t,
        phase,
        seq,
        k,
        sub,
        lvl,
        name,
        node,
        fields,
    };
    LOCAL.with(|l| {
        let mut events = l.events.borrow_mut();
        events.push(ev);
        if events.len() >= FLUSH_AT {
            drop(events);
            l.flush();
        }
    });
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render(ev: &TraceEvent, out: &mut String) {
    use std::fmt::Write as _;
    write!(
        out,
        "{{\"t\":{},\"ph\":{},\"seq\":{},\"k\":{},\"sub\":\"{}\",\"lvl\":\"{}\",\"ev\":\"{}\"",
        ev.t,
        ev.phase,
        ev.seq,
        ev.k,
        ev.sub.name(),
        ev.lvl.name(),
        escape(ev.name),
    )
    .expect("write to String");
    if let Some(n) = ev.node {
        write!(out, ",\"node\":{n}").expect("write to String");
    }
    for (key, val) in &ev.fields {
        match val {
            FieldValue::U64(v) => write!(out, ",\"{}\":{v}", escape(key)),
            FieldValue::I64(v) => write!(out, ",\"{}\":{v}", escape(key)),
            FieldValue::Bool(v) => write!(out, ",\"{}\":{v}", escape(key)),
            FieldValue::Str(v) => write!(out, ",\"{}\":\"{}\"", escape(key), escape(v)),
        }
        .expect("write to String");
    }
    out.push('}');
    out.push('\n');
}

/// Flushes the calling thread's buffered events into the shared sink.
///
/// Worker threads MUST call this before their closure returns: the
/// drop-flush of the thread-local buffer can run after `thread::scope`
/// has already observed the thread as finished, so a drain performed
/// right after the join would silently miss the worker's tail events.
pub fn flush_local() {
    LOCAL.with(|l| l.flush());
}

/// Flushes the calling thread, drains the sink, sorts by the
/// deterministic key and renders one JSON object per line.
pub fn drain_jsonl() -> String {
    LOCAL.with(|l| l.flush());
    let mut events: Vec<TraceEvent> =
        std::mem::take(&mut *sink().lock().expect("trace sink poisoned"));
    events.sort_by_key(|e| (e.t, e.phase, e.seq, e.k));
    let mut out = String::new();
    for ev in &events {
        render(ev, &mut out);
    }
    out
}

/// Number of buffered events (calling thread + sink), without
/// draining.
pub fn pending_events() -> usize {
    let local = LOCAL.with(|l| l.events.borrow().len());
    local + sink().lock().expect("trace sink poisoned").len()
}

/// Test/run isolation: discards buffered events, clears the dispatch
/// context and fallback sequence, and disables all tracing.
pub fn reset() {
    ensure_init();
    apply_spec("off");
    LOCAL.with(|l| l.events.borrow_mut().clear());
    sink().lock().expect("trace sink poisoned").clear();
    DISPATCH.with(|d| d.set(None));
    FALLBACK_SEQ.store(0, Ordering::Relaxed);
}

/// Re-arms the per-run state (dispatch context and fallback sequence)
/// without touching the spec or buffered events. Engines call this so
/// repeated runs emit identically keyed pre-run events.
pub fn new_run() {
    if !active() {
        return;
    }
    DISPATCH.with(|d| d.set(None));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{event, span};

    // The trace facility is process-global; every test below serializes
    // on this lock and resets around itself.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = guard();
        reset();
        event!(Core, Debug, "core.rx", node = 1, "from" => 2u32);
        assert_eq!(pending_events(), 0);
        assert_eq!(drain_jsonl(), "");
    }

    #[test]
    fn spec_filters_by_subsystem_and_level() {
        let _g = guard();
        reset();
        set_spec("core=debug,netsim=info");
        assert!(enabled(Subsystem::Core, Level::Debug));
        assert!(enabled(Subsystem::Core, Level::Info));
        assert!(!enabled(Subsystem::Core, Level::Trace));
        assert!(enabled(Subsystem::Netsim, Level::Info));
        assert!(!enabled(Subsystem::Netsim, Level::Debug));
        assert!(!enabled(Subsystem::Faults, Level::Error));
        set_spec("warn");
        assert!(enabled(Subsystem::Faults, Level::Warn));
        assert!(!enabled(Subsystem::Faults, Level::Info));
        reset();
    }

    #[test]
    fn dispatch_key_orders_and_renders() {
        let _g = guard();
        reset();
        set_spec("core=trace");
        // Out-of-order dispatch stamps; drain must sort by (t, seq, k).
        set_dispatch(20, 7);
        event!(Core, Debug, "b", node = 2, "x" => 1u64);
        set_dispatch(10, 3);
        event!(Core, Debug, "a");
        event!(Core, Trace, "a2", "s" => "q\"uote");
        clear_dispatch();
        event!(Core, Info, "pre");
        let out = drain_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // Phase-0 fallback sorts first (t=0), then t=10 (k ordered), then t=20.
        assert_eq!(
            lines[0],
            r#"{"t":0,"ph":0,"seq":0,"k":0,"sub":"core","lvl":"info","ev":"pre"}"#
        );
        assert_eq!(
            lines[1],
            r#"{"t":10,"ph":1,"seq":3,"k":0,"sub":"core","lvl":"debug","ev":"a"}"#
        );
        assert_eq!(
            lines[2],
            r#"{"t":10,"ph":1,"seq":3,"k":1,"sub":"core","lvl":"trace","ev":"a2","s":"q\"uote"}"#
        );
        assert_eq!(
            lines[3],
            r#"{"t":20,"ph":1,"seq":7,"k":0,"sub":"core","lvl":"debug","ev":"b","node":2,"x":1}"#
        );
        reset();
    }

    #[test]
    fn parallel_emission_merges_identically() {
        let _g = guard();
        reset();
        set_spec("core=debug");
        // Sequential reference: callbacks (t=5, seq=0..8) in order.
        for seq in 0..8u64 {
            set_dispatch(5, seq);
            event!(Core, Debug, "cb", node = seq as u32, "seq" => seq);
            event!(Core, Debug, "cb2", node = seq as u32);
        }
        clear_dispatch();
        let sequential = drain_jsonl();
        reset();
        set_spec("core=debug");
        // Same callbacks scattered across scoped threads in reverse.
        std::thread::scope(|s| {
            for seq in (0..8u64).rev() {
                s.spawn(move || {
                    set_dispatch(5, seq);
                    event!(Core, Debug, "cb", node = seq as u32, "seq" => seq);
                    event!(Core, Debug, "cb2", node = seq as u32);
                });
            }
        });
        let parallel = drain_jsonl();
        assert_eq!(sequential, parallel);
        reset();
    }

    #[test]
    fn span_emits_enter_and_exit() {
        let _g = guard();
        reset();
        set_spec("bench=trace");
        set_dispatch(1, 1);
        {
            let _s = span!(Bench, Trace, "phase", node = 9);
            event!(Bench, Trace, "inside");
        }
        clear_dispatch();
        let out = drain_jsonl();
        let names: Vec<&str> = out
            .lines()
            .map(|l| {
                let start = l.find("\"ev\":\"").unwrap() + 6;
                &l[start..start + l[start..].find('"').unwrap()]
            })
            .collect();
        assert_eq!(names, vec!["phase.enter", "inside", "phase.exit"]);
        reset();
    }
}
