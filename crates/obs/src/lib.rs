//! Deterministic observability for the ABRR reproduction.
//!
//! Three facilities, all zero-overhead when disabled (a relaxed atomic
//! load per call site, nothing else):
//!
//! * [`trace`] — structured event traces. Call sites use the
//!   [`event!`]/[`span!`] macros; events carry a deterministic sort key
//!   derived from the simulator's `(time, heap-entry id)` dispatch
//!   order, so the sequential engine and the parallel engine emit
//!   **byte-identical** JSONL (see `trace` module docs for the
//!   determinism argument). Enabled via the `ABRR_TRACE` env spec
//!   (e.g. `ABRR_TRACE=debug` or `ABRR_TRACE=core=trace,netsim=info`)
//!   or programmatically via [`trace::set_spec`].
//! * [`metrics`] — a typed registry of counters, gauges and fixed-bucket
//!   histograms, keyed by an interned [`bgp_types::Symbol`] plus an
//!   optional node label. Only *deterministic* quantities go here
//!   (protocol counts, sim-tick latencies, batch sizes, RIB occupancy):
//!   every update is commutative or single-writer-per-label, so the
//!   final [`metrics::snapshot`] is identical under both engines.
//! * [`profile`] — wall-clock engine profiling (per-run wall time,
//!   epoch counts, queue depths, worker utilization). Deliberately kept
//!   *out* of the metrics registry: wall time is nondeterministic and
//!   must never leak into engine-equivalence comparisons.
//!
//! [`UpdateCounters`] also lives here: it is the paper's §4.2 update
//! accounting, migrated from `crates/core` (which re-exports it
//! unchanged, so downstream results stay byte-identical).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use counters::UpdateCounters;
pub use metrics::{Counter, Gauge, Histogram, MetricValue, MetricsSnapshot};
pub use trace::{FieldValue, Span};

/// Trace severity, ordered: a spec level admits itself and everything
/// more severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Tracing disabled.
    Off = 0,
    /// Unrecoverable protocol violations.
    Error = 1,
    /// Suspicious but tolerated conditions.
    Warn = 2,
    /// Lifecycle landmarks (faults firing, sessions moving).
    Info = 3,
    /// Per-update protocol activity.
    Debug = 4,
    /// Everything, including per-candidate decision detail.
    Trace = 5,
}

impl Level {
    /// Lower-case name used in the `ABRR_TRACE` spec and JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        Some(match s {
            "off" => Level::Off,
            "error" => Level::Error,
            "warn" => Level::Warn,
            "info" => Level::Info,
            "debug" => Level::Debug,
            "trace" => Level::Trace,
            _ => return None,
        })
    }
}

/// The emitting subsystem; the `ABRR_TRACE` spec filters per subsystem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Subsystem {
    /// The discrete-event simulator and its engines.
    Netsim = 0,
    /// The BGP protocol engines (roles, chassis, decision).
    Core = 1,
    /// Fault-schedule compilation and injection.
    Faults = 2,
    /// The experiment pipeline and binaries.
    Bench = 3,
    /// The RFC 4271 wire codec.
    Wire = 4,
    /// The observability layer itself.
    Obs = 5,
}

/// Number of [`Subsystem`] variants (sizes the level filter array).
pub const NUM_SUBSYSTEMS: usize = 6;

impl Subsystem {
    /// Lower-case name used in the `ABRR_TRACE` spec and JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Netsim => "netsim",
            Subsystem::Core => "core",
            Subsystem::Faults => "faults",
            Subsystem::Bench => "bench",
            Subsystem::Wire => "wire",
            Subsystem::Obs => "obs",
        }
    }

    fn parse(s: &str) -> Option<Subsystem> {
        Some(match s {
            "netsim" => Subsystem::Netsim,
            "core" => Subsystem::Core,
            "faults" => Subsystem::Faults,
            "bench" => Subsystem::Bench,
            "wire" => Subsystem::Wire,
            "obs" => Subsystem::Obs,
            _ => return None,
        })
    }
}

/// Emits one structured trace event when the `(subsystem, level)` pair
/// is enabled. Field values are only evaluated when enabled.
///
/// ```
/// use obs::event;
/// obs::trace::set_spec("core=debug");
/// event!(Core, Debug, "core.rx", node = 3, "from" => 5u32, "n_paths" => 2usize);
/// obs::trace::reset();
/// ```
#[macro_export]
macro_rules! event {
    ($sub:ident, $lvl:ident, $name:expr $(, node = $node:expr)? $(, $k:literal => $v:expr)* $(,)?) => {{
        if $crate::trace::enabled($crate::Subsystem::$sub, $crate::Level::$lvl) {
            #[allow(unused_mut, unused_assignments)]
            let mut node: Option<u32> = None;
            $(node = Some($node);)?
            $crate::trace::record(
                $crate::Subsystem::$sub,
                $crate::Level::$lvl,
                $name,
                node,
                vec![$(($k, $crate::FieldValue::from($v))),*],
            );
        }
    }};
}

/// Opens a [`Span`]: emits `<name>.enter` now and `<name>.exit` when
/// the returned guard drops. The name must be a string literal (the
/// `.enter`/`.exit` names are derived at compile time). Both ends carry
/// the deterministic sort key, so spans nest correctly in the merged
/// trace.
///
/// ```
/// use obs::span;
/// obs::trace::set_spec("bench=trace");
/// {
///     let _g = span!(Bench, Trace, "bench.phase", node = 1);
/// } // emits bench.phase.exit here
/// obs::trace::reset();
/// ```
#[macro_export]
macro_rules! span {
    ($sub:ident, $lvl:ident, $name:literal $(, node = $node:expr)? $(,)?) => {{
        #[allow(unused_mut, unused_assignments)]
        let mut node: Option<u32> = None;
        $(node = Some($node);)?
        $crate::Span::enter(
            $crate::Subsystem::$sub,
            $crate::Level::$lvl,
            concat!($name, ".enter"),
            concat!($name, ".exit"),
            node,
        )
    }};
}
